"""Source-code generation: the third evaluator tier.

The closure-compiled join plans (:mod:`repro.overlog.plan`) removed the
per-tuple AST walk, but still pay for generality on every execution: a
chain of ``step.run`` calls, an environment *dict* copied at every
binding step, probe values re-tupled per environment, and a Python-level
dispatch per step kind.  This module compiles each plan one level
further, to actual Python source: one flat ``exec``-generated function
per (rule × delta position × output shape), where

* body atoms become **nested loops and ``if`` guards** — the depth-first
  enumeration order of a nested loop provably equals the breadth-first
  order of the step pipeline (each step emits, per input environment, its
  matches in candidate-row order), so outputs are bit-identical;
* variable bindings become **Python locals** (``v_Name``), not dict
  entries — the per-step ``dict(env)`` copy disappears entirely;
* expressions are emitted as **inline Python expressions** with the same
  evaluation order, short-circuiting, integer-division and
  error-wrapping semantics as ``compile_expr`` (builtins still route
  through ``FunctionLibrary.call``, so late registration and error
  wrapping behave identically);
* an atom whose probed columns cover the table's **primary key** becomes
  a single ``Table.lookup_key`` dict get — no index, no loop, no
  candidate list.  This is the NameNode fast path: BOOM-FS metadata
  tables (``fqpath``, ``file``, ``fchunk``) are keyed on their first
  column, so a request rule's body collapses to a chain of dict lookups;
* a **delta atom nested under other loops** with equality constraints
  against outer-bound variables gets its delta rows grouped by those
  columns once per execution, turning the scan × delta filter loop into
  a dict probe (buckets preserve delta order, so output order is
  untouched).

Four output shapes are emitted per plan: ``plain`` (head tuples, the
default hot path), ``tracked`` (head tuples plus the final binding
environment as a dict — what the provenance ledger consumes), ``envs``
(binding environments only — the tracked-aggregate input), and ``agg``
(pre-projected ``(group-key, agg-values)`` pairs — the untracked
aggregate fold's input, skipping the environment dict entirely).
Wildcard-step deduplication uses a tuple of the bound locals in sorted
name order, which discriminates exactly like the closure tier's
``frozenset(env.items())`` because the key set is fixed per step.

Anything the emitter does not recognize raises :class:`Unsupported` and
the caller (``RulePlans``) silently keeps the closure tier for that plan
— codegen is an overlay, never a semantic fork.
"""

from __future__ import annotations

from typing import Any, Optional

from .ast import AggSpec, Assign, Atom, BinOp, Cond, Const, Expr, FuncCall, NotIn, Rule, UnOp, Var
from .catalog import Catalog
from .errors import EvaluationError
from .functions import FunctionLibrary

# Binary operators that translate 1:1 to Python (same symbol, same
# left-then-right evaluation order).
_DIRECT_BINOPS = {"+", "-", "*", "%", "==", "!=", "<", "<=", ">", ">="}

# Stateful builtins whose *call order* is observable (fresh ids, RNG
# draws).  The nested-loop (depth-first) enumeration calls expression
# sites in a different global interleaving than the closure tier's
# step-at-a-time (breadth-first) order when more than one body/head
# element contains such a call — so those rules stay on the closure
# tier.  With at most one stateful site, environments reach it in the
# same order under both schedules and the call sequences coincide.
ORDER_SENSITIVE_FUNCTIONS = frozenset(
    {"f_newid", "f_uid", "f_rand", "f_randint"}
)


def _expr_has_sensitive_call(e: Any) -> bool:
    if isinstance(e, FuncCall):
        if e.name in ORDER_SENSITIVE_FUNCTIONS:
            return True
        return any(_expr_has_sensitive_call(a) for a in e.args)
    if isinstance(e, BinOp):
        return _expr_has_sensitive_call(e.left) or _expr_has_sensitive_call(
            e.right
        )
    if isinstance(e, UnOp):
        return _expr_has_sensitive_call(e.operand)
    return False


def _sensitive_sites(rule: Rule) -> int:
    """Number of body/head elements containing an order-sensitive call."""
    sites = 0
    for elem in rule.body:
        if isinstance(elem, Atom):
            exprs: tuple = elem.args
        elif isinstance(elem, NotIn):
            exprs = elem.atom.args
        elif isinstance(elem, Assign):
            exprs = (elem.expr,)
        elif isinstance(elem, Cond):
            exprs = (elem.expr,)
        else:
            return 2  # unknown element: force fallback
        if any(_expr_has_sensitive_call(e) for e in exprs):
            sites += 1
    head_exprs = tuple(
        a.var if isinstance(a, AggSpec) else a for a in rule.head.args
    )
    if any(_expr_has_sensitive_call(e) for e in head_exprs):
        sites += 1
    return sites

_INLINE_CONSTS = (int, str, float, bool, type(None))


def atom_needs_dedup(atom: Atom, table: Any = None) -> bool:
    """Whether an atom step can map distinct rows onto the same binding
    (and so needs the per-step dedup both tiers otherwise skip).

    Only wildcard columns can collapse distinct rows.  And when the atom
    enumerates *live rows of a keyed table* whose key columns are all
    non-wildcard, even wildcards cannot: two distinct stored rows differ
    in some key column, which is visible to the binding.  Pass the
    resolved ``table`` only for sources enumerating live table rows
    (scan / probe / pk-get) — not for delta lists, where a primary-key
    displacement can leave two same-key row versions in one delta, nor
    for event pools (unkeyed).
    """
    nonwild = {
        col
        for col, a in enumerate(atom.args)
        if not (isinstance(a, Var) and a.is_wildcard)
    }
    if len(nonwild) == len(atom.args):
        return False
    if table is not None:
        keys = table.decl.keys
        if keys and set(keys) <= nonwild:
            return False
    return True


class Unsupported(Exception):
    """Raised when a rule shape cannot be emitted; caller falls back to
    the closure tier."""


def _overlog_div(a: Any, b: Any) -> Any:
    # Integer operands use integer division (Overlog is int-heavy: chunk
    # offsets, slot counts); any float operand gives float math.
    if isinstance(a, int) and isinstance(b, int):
        return a // b
    return a / b


def _wildcard_value() -> Any:
    raise EvaluationError("wildcard _ used where a value is required")


def _unbound(name: str) -> Any:
    raise EvaluationError(f"unbound variable {name}")


class _Emitter:
    """Emits one flat function for one (rule, delta_pos, kind)."""

    def __init__(
        self,
        rule: Rule,
        delta_pos: Optional[int],
        catalog: Catalog,
        functions: FunctionLibrary,
        ns: dict,
    ):
        self.rule = rule
        self.delta_pos = delta_pos
        self.catalog = catalog
        self.ns = ns
        self.n = 0
        self.preamble: list[str] = []
        self.body: list[str] = []
        self.notes: list[str] = []
        if "_call" not in ns:
            ns["_call"] = functions.call
            ns["_div"] = _overlog_div
            ns["_wild"] = _wildcard_value
            ns["_unbound"] = _unbound
            ns["_E"] = ()

    # -- small helpers ------------------------------------------------------

    def tmp(self, prefix: str) -> str:
        self.n += 1
        return f"_{prefix}{self.n}"

    def w(self, indent: int, text: str) -> None:
        self.body.append("    " * indent + text)

    def table_ref(self, name: str) -> str:
        ref = f"_tbl_{name}"
        if not ref.isidentifier():
            raise Unsupported(f"relation name {name!r}")
        self.ns[ref] = self.catalog.table(name)
        return ref

    def const_expr(self, value: Any) -> str:
        if type(value) in _INLINE_CONSTS:
            return repr(value)
        ref = self.tmp("c")
        self.ns[ref] = value
        return ref

    def var_local(self, name: str) -> str:
        local = f"v_{name}"
        if not local.isidentifier():
            raise Unsupported(f"variable name {name!r}")
        return local

    # -- expressions --------------------------------------------------------

    def expr(self, e: Expr, varmap: dict[str, str]) -> str:
        if isinstance(e, Const):
            return self.const_expr(e.value)
        if isinstance(e, Var):
            if e.is_wildcard:
                return "_wild()"
            local = varmap.get(e.name)
            if local is None:
                return f"_unbound({e.name!r})"
            return local
        if isinstance(e, FuncCall):
            args = ", ".join(self.expr(a, varmap) for a in e.args)
            if args:
                args += ","
            return f"_call({e.name!r}, ({args}))"
        if isinstance(e, UnOp):
            inner = self.expr(e.operand, varmap)
            if e.op == "-":
                return f"(-({inner}))"
            if e.op == "!":
                return f"(not ({inner}))"
            raise Unsupported(f"unary operator {e.op}")
        if isinstance(e, BinOp):
            left = self.expr(e.left, varmap)
            right = self.expr(e.right, varmap)
            if e.op == "&&":
                return f"bool(({left}) and ({right}))"
            if e.op == "||":
                return f"bool(({left}) or ({right}))"
            if e.op == "/":
                return f"_div({left}, {right})"
            if e.op in _DIRECT_BINOPS:
                return f"(({left}) {e.op} ({right}))"
            raise Unsupported(f"operator {e.op}")
        raise Unsupported(f"expression {e!r}")

    # -- matcher (shared by positive atoms and negation) --------------------

    def emit_match(
        self,
        atom: Atom,
        row: str,
        indent: int,
        varmap: dict[str, str],
        probed: set[int],
        needs_len: bool,
        bind_temp: bool,
    ) -> int:
        """Emit the per-row unification for ``atom`` (binds + checks, in
        strict column order, matching ``_compile_matcher``).  Returns the
        indent level of the matched block.  ``bind_temp`` binds new
        variables to throwaway temps (negation) instead of ``v_`` locals.
        """
        conds: list[str] = []
        if needs_len:
            conds.append(f"len({row}) == {len(atom.args)}")

        def flush(ind: int) -> int:
            if conds:
                self.w(ind, "if " + " and ".join(conds) + ":")
                conds.clear()
                return ind + 1
            return ind

        seen_new: set[str] = set()
        for col, arg in enumerate(atom.args):
            if isinstance(arg, Var):
                if arg.is_wildcard:
                    continue
                if arg.name in varmap or arg.name in seen_new:
                    if col not in probed:
                        conds.append(f"{varmap[arg.name]} == {row}[{col}]")
                else:
                    indent = flush(indent)
                    local = (
                        self.tmp("t") if bind_temp else self.var_local(arg.name)
                    )
                    self.w(indent, f"{local} = {row}[{col}]")
                    varmap[arg.name] = local
                    seen_new.add(arg.name)
            elif isinstance(arg, Const):
                if col not in probed:
                    conds.append(f"{self.const_expr(arg.value)} == {row}[{col}]")
            else:
                conds.append(f"({self.expr(arg, varmap)}) == {row}[{col}]")
        return flush(indent)

    # -- probe analysis -----------------------------------------------------

    def probe_spec(
        self, atom: Atom, varmap: dict[str, str]
    ) -> list[tuple[int, str]]:
        """(column, value-expression) pairs usable as an index probe —
        every constant argument and every previously-bound variable (the
        same most-bound composite key ``_probe_spec`` picks)."""
        out: list[tuple[int, str]] = []
        for col, arg in enumerate(atom.args):
            if isinstance(arg, Const):
                out.append((col, self.const_expr(arg.value)))
            elif (
                isinstance(arg, Var)
                and not arg.is_wildcard
                and arg.name in varmap
            ):
                out.append((col, varmap[arg.name]))
        return out

    def pk_cols(self, atom: Atom, probe_cols: tuple[int, ...]) -> Optional[tuple[int, ...]]:
        """The table's key columns when the probe covers them (the PK
        fast path: the probe pins the whole primary key, so at most one
        row can match — fetch it with one dict get)."""
        table = self.catalog.tables.get(atom.name)
        if table is None:
            return None
        keys = table.decl.keys or tuple(range(table.decl.arity))
        if keys and set(keys) <= set(probe_cols):
            return keys
        return None

    def needs_wildcard_dedup(self, atom: Atom, source: str) -> bool:
        """Whether this atom step needs the wildcard dedup set.

        Shares :func:`atom_needs_dedup`'s proof: when live rows of a
        keyed table are enumerated and the non-wildcard columns cover
        the primary key, duplicates are impossible and the dedup is a
        skippable no-op.  Delta lists are excluded — a primary-key
        displacement can put two same-key row versions into one delta.
        """
        return atom_needs_dedup(
            atom,
            None if source == "delta" else self.catalog.tables.get(atom.name),
        )

    # -- body elements ------------------------------------------------------

    def emit_atom(
        self, atom: Atom, source: str, indent: int, varmap: dict[str, str]
    ) -> int:
        materialized = self.catalog.is_materialized(atom.name)
        row = self.tmp("r")
        ban = None
        if source == "post":
            ban = self.tmp("ban")
            self.preamble.append(
                f"{ban} = None if exclude is None else exclude.get({atom.name!r})"
            )

        probe: list[tuple[int, str]] = []
        if materialized and source != "delta":
            probe = self.probe_spec(atom, varmap)
        probe_cols = tuple(c for c, _ in probe)
        probed: set[int] = set(probe_cols)
        needs_len = True
        pk = self.pk_cols(atom, probe_cols) if probe else None

        if source == "delta":
            # Scan × delta joins: when the delta atom has equality
            # constraints against variables bound by enclosing loops (or
            # constants), group the delta rows by those columns once in
            # the preamble and probe with a dict get — O(table + delta)
            # instead of O(table × delta).  Buckets keep delta order, so
            # for any fixed outer binding the matching rows come out in
            # exactly the order the plain filter loop would produce.
            group: list[tuple[int, str]] = []
            has_bound_var = False
            for col, arg in enumerate(atom.args):
                if isinstance(arg, Const):
                    group.append((col, self.const_expr(arg.value)))
                elif (
                    isinstance(arg, Var)
                    and not arg.is_wildcard
                    and arg.name in varmap
                ):
                    group.append((col, varmap[arg.name]))
                    has_bound_var = True
            if has_bound_var:
                didx = self.tmp("didx")
                dr = self.tmp("dr")
                key = ", ".join(f"{dr}[{c}]" for c, _ in group) + ","
                self.preamble.append(f"{didx} = {{}}")
                self.preamble.append(f"for {dr} in delta_rows:")
                self.preamble.append(
                    f"    if len({dr}) == {len(atom.args)}:"
                )
                self.preamble.append(
                    f"        {didx}.setdefault(({key}), []).append({dr})"
                )
                vals = ", ".join(v for _, v in group) + ","
                cols = ", ".join(str(c) for c, _ in group)
                self.notes.append(f"{atom.name}: delta grouped [{cols}]")
                self.w(indent, f"for {row} in {didx}.get(({vals}), _E):")
                indent += 1
                probed.update(c for c, _ in group)
                needs_len = False
            else:
                self.notes.append(f"{atom.name}: delta")
                self.w(indent, f"for {row} in delta_rows:")
                indent += 1
        elif pk is not None:
            # lookup_key pins only the key columns, but the closure tier's
            # composite index pinned *every* probed column — so the non-key
            # probed checks run here, before any matcher op, keeping the
            # candidate set (and hence downstream expression evaluations)
            # identical to the closure tier's.
            by_col = dict(probe)
            key_expr = ", ".join(by_col[c] for c in pk) + ","
            tbl = self.table_ref(atom.name)
            self.notes.append(
                f"{atom.name}: pk-get [{', '.join(map(str, pk))}]"
            )
            self.w(indent, f"{row} = {tbl}.lookup_key(({key_expr}))")
            guard = [f"{row} is not None"] + [
                f"{val} == {row}[{col}]"
                for col, val in probe
                if col not in pk
            ]
            self.w(indent, "if " + " and ".join(guard) + ":")
            indent += 1
            needs_len = False
        elif materialized and probe:
            tbl = self.table_ref(atom.name)
            self.notes.append(
                f"{atom.name}: probe [{', '.join(map(str, probe_cols))}]"
            )
            if len(probe) == 1:
                col, val = probe[0]
                # _ref: the live index bucket, uncopied — safe because
                # this function materializes its output before returning.
                self.w(
                    indent,
                    f"for {row} in {tbl}.rows_matching_ref({col}, {val}):",
                )
            else:
                cols = ", ".join(str(c) for c in probe_cols) + ","
                vals = ", ".join(v for _, v in probe) + ","
                self.w(
                    indent,
                    f"for {row} in {tbl}.rows_matching_cols(({cols}), ({vals})):",
                )
            indent += 1
            needs_len = False
        elif materialized:
            tbl = self.table_ref(atom.name)
            self.notes.append(f"{atom.name}: scan")
            self.w(indent, f"for {row} in {tbl}.rows_list():")
            indent += 1
            needs_len = False
        else:
            self.notes.append(f"{atom.name}: scan-events")
            self.w(
                indent,
                f"for {row} in ev._event_pool.get({atom.name!r}, _E):",
            )
            indent += 1

        if ban is not None:
            self.w(indent, f"if {ban} is None or {row} not in {ban}:")
            indent += 1

        indent = self.emit_match(
            atom, row, indent, varmap, probed, needs_len, bind_temp=False
        )

        if self.needs_wildcard_dedup(atom, source):
            # Wildcard columns can map distinct rows onto the same
            # binding; dedup on the bound locals (fixed key set ⇒ same
            # discriminator as the closure tier's frozenset(env.items())).
            seen = self.tmp("seen")
            self.preamble.append(f"{seen} = set()")
            sig = self.tmp("sig")
            vals = ", ".join(varmap[k] for k in sorted(varmap))
            self.w(indent, f"{sig} = ({vals + ',' if vals else ''})")
            self.w(indent, f"if {sig} not in {seen}:")
            indent += 1
            self.w(indent, f"{seen}.add({sig})")
        return indent

    def emit_neg(self, atom: Atom, indent: int, varmap: dict[str, str]) -> int:
        table = self.catalog.tables.get(atom.name)
        probe = self.probe_spec(atom, varmap) if table is not None else []
        probe_cols = tuple(c for c, _ in probe)
        pk = self.pk_cols(atom, probe_cols) if probe else None
        hit = self.tmp("hit")
        nrow = self.tmp("n")
        overlay = dict(varmap)
        self.w(indent, f"{hit} = False")
        if pk is not None:
            by_col = dict(probe)
            key_expr = ", ".join(by_col[c] for c in pk) + ","
            tbl = self.table_ref(atom.name)
            self.notes.append(
                f"notin {atom.name}: pk-get [{', '.join(map(str, pk))}]"
            )
            self.w(indent, f"{nrow} = {tbl}.lookup_key(({key_expr}))")
            guard = [f"{nrow} is not None"] + [
                f"{val} == {nrow}[{col}]"
                for col, val in probe
                if col not in pk
            ]
            self.w(indent, "if " + " and ".join(guard) + ":")
            inner = self.emit_match(
                atom, nrow, indent + 1, overlay, set(probe_cols),
                needs_len=False, bind_temp=True,
            )
            self.w(inner, f"{hit} = True")
        else:
            if table is not None and probe:
                tbl = self.table_ref(atom.name)
                self.notes.append(
                    f"notin {atom.name}: probe "
                    f"[{', '.join(map(str, probe_cols))}]"
                )
                if len(probe) == 1:
                    col, val = probe[0]
                    cand = f"{tbl}.rows_matching_ref({col}, {val})"
                else:
                    cols = ", ".join(str(c) for c in probe_cols) + ","
                    vals = ", ".join(v for _, v in probe) + ","
                    cand = f"{tbl}.rows_matching_cols(({cols}), ({vals}))"
                needs_len = False
            elif table is not None:
                tbl = self.table_ref(atom.name)
                self.notes.append(f"notin {atom.name}: scan")
                cand = f"{tbl}.rows_list()"
                needs_len = False
            else:
                self.notes.append(f"notin {atom.name}: scan-events")
                cand = f"ev._event_pool.get({atom.name!r}, _E)"
                needs_len = True
            self.w(indent, f"for {nrow} in {cand}:")
            inner = self.emit_match(
                atom, nrow, indent + 1, overlay, set(probe_cols),
                needs_len=needs_len, bind_temp=True,
            )
            self.w(inner, f"{hit} = True")
            self.w(inner, "break")
        self.w(indent, f"if not {hit}:")
        return indent + 1

    # -- whole function -----------------------------------------------------

    def emit_function(self, name: str, kind: str) -> str:
        """Emit one function and return its source.  ``kind`` picks the
        output shape: ``plain`` -> (rel, row), ``tracked`` -> (rel, row,
        env-dict), ``envs`` -> env-dict only."""
        rule = self.rule
        self.preamble = []
        self.body = []
        varmap: dict[str, str] = {}
        indent = 1
        pos = 0
        for elem in rule.body:
            if isinstance(elem, Atom):
                if self.delta_pos is None:
                    source = "full"
                elif pos == self.delta_pos:
                    source = "delta"
                elif pos > self.delta_pos:
                    source = "post"
                else:
                    source = "full"
                indent = self.emit_atom(elem, source, indent, varmap)
                pos += 1
            elif isinstance(elem, NotIn):
                indent = self.emit_neg(elem.atom, indent, varmap)
            elif isinstance(elem, Assign):
                vname = elem.var.name
                if vname in varmap:
                    self.w(
                        indent,
                        f"if {varmap[vname]} == ({self.expr(elem.expr, varmap)}):",
                    )
                    indent += 1
                else:
                    local = self.var_local(vname)
                    self.w(indent, f"{local} = {self.expr(elem.expr, varmap)}")
                    varmap[vname] = local
            elif isinstance(elem, Cond):
                self.w(indent, f"if ({self.expr(elem.expr, varmap)}):")
                indent += 1
            else:
                raise Unsupported(f"body element {elem!r}")

        env_dict = (
            "{" + ", ".join(f"{k!r}: {v}" for k, v in varmap.items()) + "}"
        )
        if kind == "envs":
            self.w(indent, f"_append({env_dict})")
        elif kind == "agg":
            # Pre-projected fold input for AggregatePlan: one
            # (group-key tuple, aggregated-values) pair per distinct
            # binding, in the exact positional order of ``group_fns`` /
            # ``agg_specs`` — wildcard count<*> slots carry None, exactly
            # like the closure fold's per-env extraction.  Single-spec
            # rules (the common case) carry the bare value instead of a
            # 1-tuple; ``AggregatePlan.execute`` folds scalars directly.
            keys = ", ".join(
                self.expr(a, varmap)
                for a in rule.head.args
                if not isinstance(a, AggSpec)
            )
            specs = [a for a in rule.head.args if isinstance(a, AggSpec)]
            vals = [
                "None" if a.var.is_wildcard else self.expr(a.var, varmap)
                for a in specs
            ]
            key_t = f"({keys + ',' if keys else ''})"
            if len(vals) == 1:
                val_t = vals[0]
            else:
                val_t = f"({', '.join(vals)}{',' if vals else ''})"
            self.w(indent, f"_append(({key_t}, {val_t}))")
        else:
            if any(isinstance(a, AggSpec) for a in rule.head.args):
                raise Unsupported("aggregate head in tuple-emitting plan")
            args = ", ".join(self.expr(a, varmap) for a in rule.head.args)
            head_tuple = f"({args + ',' if args else ''})"
            if kind == "tracked":
                self.w(
                    indent,
                    f"_append(({rule.head.name!r}, {head_tuple}, {env_dict}))",
                )
            else:
                self.w(indent, f"_append(({rule.head.name!r}, {head_tuple}))")

        lines = [f"def {name}(ev, delta_rows=(), exclude=None):"]
        lines += ["    _out = []", "    _append = _out.append"]
        lines += ["    " + p for p in self.preamble]
        lines += self.body
        lines += ["    return _out"]
        return "\n".join(lines)


def generate_plan_source(
    rule: Rule,
    delta_pos: Optional[int],
    catalog: Catalog,
    functions: FunctionLibrary,
    kinds: tuple[str, ...],
) -> tuple[dict[str, Any], str]:
    """Compile one (rule, delta position) to flat functions.

    Returns ``(fns, source)`` where ``fns`` maps each requested kind
    (``plain`` / ``tracked`` / ``envs``) to an executable function with
    the ``(ev, delta_rows, exclude)`` signature of ``JoinPlan.execute``.
    Raises :class:`Unsupported` when the rule shape cannot be emitted.
    """
    if _sensitive_sites(rule) > 1:
        raise Unsupported(
            "multiple order-sensitive builtin call sites (kept on the "
            "closure tier to preserve the stateful call sequence)"
        )
    ns: dict[str, Any] = {}
    tag = "full" if delta_pos is None else f"delta@{delta_pos}"
    chunks: list[str] = []
    names: dict[str, str] = {}
    emitter = _Emitter(rule, delta_pos, catalog, functions, ns)
    for kind in kinds:
        fn_name = f"_{rule.name}_{tag.replace('@', '_')}_{kind}"
        if not fn_name.isidentifier():
            fn_name = f"_plan_{kind}"
        emitter.notes = []
        chunks.append(emitter.emit_function(fn_name, kind))
        names[kind] = fn_name
    header = [f"# rule {rule.name} [{tag}] :: {rule}"]
    header += [f"#   {note}" for note in emitter.notes]
    source = "\n".join(header) + "\n" + "\n\n".join(chunks) + "\n"
    try:
        code = compile(source, f"<codegen:{rule.name}:{tag}>", "exec")
    except SyntaxError as exc:  # pragma: no cover - emitter bug guard
        raise Unsupported(f"emitted invalid source: {exc}") from exc
    exec(code, ns)
    return {kind: ns[names[kind]] for kind in kinds}, source
