"""PyJOL: an Overlog (distributed Datalog) runtime.

This package reimplements the substrate that BOOM Analytics (EuroSys 2010)
built on: the JOL runtime for the Overlog language.  Programs are parsed
from Overlog source text, checked for stratifiability, and executed in
timesteps with JOL semantics (fixpoint per step, primary-key updates,
``@location`` network rules, periodic timers, deletion rules).

Quick example::

    from repro.overlog import OverlogRuntime

    rt = OverlogRuntime('''
        program paths;
        define(link, keys(0, 1), {Str, Str});
        define(path, keys(0, 1), {Str, Str});
        path(X, Y) :- link(X, Y);
        path(X, Z) :- link(X, Y), path(Y, Z);
    ''')
    rt.insert_many("link", [("a", "b"), ("b", "c")])
    rt.tick()
    assert ("a", "c") in rt.rows("path")
"""

from .ast import (
    AggSpec,
    Assign,
    Atom,
    BinOp,
    Cond,
    Const,
    EventDecl,
    FuncCall,
    NotIn,
    Program,
    Rule,
    TableDecl,
    TimerDecl,
    UnOp,
    Var,
)
from .catalog import Catalog, Table
from .errors import (
    CatalogError,
    EvaluationError,
    LexError,
    OverlogError,
    ParseError,
    StratificationError,
    UnknownFunctionError,
)
from .eval import Evaluator, StepResult
from .functions import FunctionLibrary
from .parser import parse, parse_with_watches
from .plan import AggregatePlan, JoinPlan, PlanCache, RulePlans, compile_expr
from .runtime import OverlogRuntime
from .strata import check_program, compute_strata

__all__ = [
    "AggSpec",
    "AggregatePlan",
    "Assign",
    "Atom",
    "BinOp",
    "Catalog",
    "CatalogError",
    "Cond",
    "Const",
    "EvaluationError",
    "Evaluator",
    "EventDecl",
    "FuncCall",
    "FunctionLibrary",
    "JoinPlan",
    "LexError",
    "NotIn",
    "OverlogError",
    "OverlogRuntime",
    "ParseError",
    "PlanCache",
    "Program",
    "Rule",
    "RulePlans",
    "StepResult",
    "StratificationError",
    "Table",
    "TableDecl",
    "TimerDecl",
    "UnOp",
    "UnknownFunctionError",
    "Var",
    "check_program",
    "compile_expr",
    "compute_strata",
    "parse",
    "parse_with_watches",
]
