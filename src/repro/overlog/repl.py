"""Interactive Overlog REPL.

Load a program, poke tuples in, tick the clock, inspect tables::

    python -m repro.overlog.repl src/repro/boomfs/programs/boomfs_master.olg

Commands:
    insert <rel> <v1> <v2> ...   queue a tuple (ints/floats auto-coerced;
                                 'true'/'false'/'nil' recognized)
    install <rel> <v1> ...       load a fact directly into a table
    tick [now_ms]                run one timestep (drains deferred work)
    dump <rel>                   print a table's rows
    tables                       list tables with row counts
    rules                        print the program's rules
    strata                       print relation strata
    watch <rel>                  echo future derivations of a relation
    \\why <rel> <v1> ...          derivation DAG of a tuple (provenance)
    \\whynot <rel> <v1> ...       why a tuple is absent ('?' = unknown col)
    \\profile [top]               sampled hot-rules report
    \\explain [rule]              compiled join plans (+ fire counts)
    \\src [rule]                  Python source the codegen tier generated
                                 for a rule's plans (all rules if omitted)
    \\lat [trace]                 critical-path latency accounting of a
                                 trace (default: the last insert's)
    \\inv                         invariant violations recorded so far,
                                 each with a one-hop why() summary
    help / quit
"""

from __future__ import annotations

import sys
from typing import Any

from ..metrics.trace import Tracer
from .errors import OverlogError
from .parser import parse
from .runtime import OverlogRuntime
from .strata import compute_strata


def _coerce(token: str) -> Any:
    if token == "true":
        return True
    if token == "false":
        return False
    if token == "nil":
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token.strip('"')


class Repl:
    """The REPL runs its runtime with the derivation ledger and plan
    profiler enabled (unlike the library default of off): an interactive
    session is exactly where ``\\why``/``\\whynot``/``\\profile`` pay off,
    and its workloads are small enough that the overhead is invisible."""

    def __init__(
        self,
        source: str,
        address: str = "repl",
        provenance: bool = True,
        profile: bool = True,
    ):
        self.runtime = OverlogRuntime(
            parse(source),
            address=address,
            provenance=provenance,
            profile=profile,
        )
        self._now = 0
        # Every insert opens a trace, every tick annotates the steps it
        # causes, so \lat can explain where a tuple's time went even in
        # this single-node setting (timer waits, per-rule compute).
        self.tracer = Tracer(clock=lambda: self._now)
        self._last_trace: str | None = None
        # Programs carrying invariant packs (heads deriving
        # invariant_violation — see repro.monitoring.invariants) get a
        # live tally for \inv; plain programs skip the hook.
        self._violations: list[tuple] = []
        if self.runtime.catalog.is_declared("invariant_violation"):
            self.runtime.watch(
                "invariant_violation", self._violations.append
            )

    def execute(self, line: str) -> str:
        parts = line.split()
        if not parts:
            return ""
        cmd, *args = parts
        cmd = cmd.lstrip("\\")
        handler = getattr(self, f"cmd_{cmd}", None)
        if handler is None:
            return f"unknown command {cmd!r}; try 'help'"
        try:
            return handler(*args)
        except OverlogError as exc:
            return f"error: {exc}"
        except TypeError as exc:
            return f"usage error: {exc}"

    def cmd_insert(self, rel: str, *values: str) -> str:
        ref = self.tracer.start_trace(
            f"{rel} {' '.join(values)}".strip(), node="repl"
        )
        self._last_trace = ref.trace_id
        self.runtime.insert(
            rel, tuple(_coerce(v) for v in values), trace=(ref,)
        )
        return f"queued {rel}({', '.join(values)}) [trace {ref.trace_id}]"

    def cmd_install(self, rel: str, *values: str) -> str:
        self.runtime.install(rel, [tuple(_coerce(v) for v in values)])
        return f"installed {rel}({', '.join(values)})"

    def _traced_tick(self):
        """One runtime tick with the step annotated onto whatever traces
        its inbox tuples carried (mirrors OverlogProcess._run_step)."""
        fires_before = dict(self.runtime.evaluator.rule_fires)
        result = self.runtime.tick(now=self._now)
        ctx = self.runtime.last_step_ctx
        if ctx:
            annotation: dict[str, Any] = {
                "node": "repl",
                "derivations": result.derivation_count,
            }
            fired = sorted(
                (name, count - fires_before.get(name, 0))
                for name, count in self.runtime.evaluator.rule_fires.items()
                if count != fires_before.get(name, 0)
            )
            if fired:
                annotation["rules"] = fired
            self.tracer.annotate(ctx, "step", **annotation)
        return result

    def cmd_tick(self, now: str = "") -> str:
        if now:
            self._now = int(now)
        else:
            self._now += 1
        result = self._traced_tick()
        lines = [
            f"t={self._now}: {result.derivation_count} derivations, "
            f"{len(result.sends)} sends, {len(result.deletions)} deletions"
        ]
        for dest, rel, row in result.sends:
            lines.append(f"  send -> {dest}: {rel}{row}")
        steps = 0
        while self.runtime.has_pending_work and steps < 100:
            steps += 1
            follow = self._traced_tick()
            lines.append(
                f"  (+deferred step: {follow.derivation_count} derivations)"
            )
            for dest, rel, row in follow.sends:
                lines.append(f"  send -> {dest}: {rel}{row}")
        return "\n".join(lines)

    def cmd_dump(self, rel: str) -> str:
        rows = sorted(self.runtime.rows(rel), key=repr)
        if not rows:
            return f"{rel}: (empty)"
        return "\n".join(f"{rel}{row}" for row in rows)

    def cmd_tables(self) -> str:
        out = []
        for name, table in sorted(self.runtime.catalog.tables.items()):
            out.append(f"{name:24s} {len(table)} rows")
        return "\n".join(out)

    def cmd_rules(self) -> str:
        return "\n".join(str(r) for r in self.runtime.program.rules)

    def cmd_strata(self) -> str:
        strata = compute_strata(self.runtime.program.rules)
        by_level: dict[int, list[str]] = {}
        for rel, level in strata.items():
            by_level.setdefault(level, []).append(rel)
        return "\n".join(
            f"stratum {level}: {', '.join(sorted(rels))}"
            for level, rels in sorted(by_level.items())
        )

    def cmd_why(self, rel: str, *values: str) -> str:
        return self.runtime.why(rel, tuple(_coerce(v) for v in values))

    def cmd_whynot(self, rel: str, *values: str) -> str:
        from ..provenance.why import UNKNOWN

        row = tuple(
            UNKNOWN if v == "?" else _coerce(v) for v in values
        )
        return self.runtime.why_not(rel, row)

    def cmd_profile(self, top: str = "") -> str:
        return self.runtime.profile_report(top=int(top) if top else None)

    def cmd_explain(self, rule: str = "") -> str:
        return self.runtime.explain(rule or None)

    def cmd_src(self, rule: str = "") -> str:
        return self.runtime.generated_source(rule or None)

    def cmd_lat(self, trace: str = "") -> str:
        from ..latency import critical_path

        trace_id = trace or self._last_trace
        if trace_id is None:
            return "no traces yet — 'insert' something first"
        report = critical_path(self.tracer, trace_id)
        if report is None:
            return f"(no such trace {trace_id})"
        return report.render_text()

    def cmd_inv(self) -> str:
        if not self.runtime.catalog.is_declared("invariant_violation"):
            return "this program declares no invariant_violation relation"
        if not self._violations:
            return "no invariant violations recorded"
        lines = []
        for row in sorted(set(self._violations), key=repr):
            count = self._violations.count(row)
            times = f" (x{count})" if count > 1 else ""
            lines.append(f"invariant_violation{row}{times}")
            why = str(self.runtime.why("invariant_violation", row))
            hop = [ln for ln in why.splitlines() if ln.strip()][:4]
            lines.extend(f"    {ln}" for ln in hop)
        return "\n".join(lines)

    def cmd_watch(self, rel: str) -> str:
        self.runtime.watch(rel, lambda row: print(f"  [watch] {rel}{row}"))
        return f"watching {rel}"

    def cmd_help(self) -> str:
        return __doc__.split("Commands:", 1)[1]

    def cmd_quit(self) -> str:
        raise EOFError


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print(__doc__)
        return 2
    with open(argv[0]) as f:
        source = f.read()
    repl = Repl(source)
    print(f"loaded {argv[0]}: {len(repl.runtime.program.rules)} rules "
          f"({len(repl.runtime.catalog.tables)} tables). 'help' for commands.")
    while True:
        try:
            line = input("olg> ")
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        try:
            output = repl.execute(line)
        except EOFError:
            return 0
        if output:
            print(output)


if __name__ == "__main__":
    raise SystemExit(main())
