"""Recursive-descent parser for the Overlog dialect.

Grammar sketch (see DESIGN.md §5 for a worked example)::

    program   := "program" IDENT ";" (decl | rule)*
    decl      := define | event | timer | watch
    define    := "define" "(" name "," "keys" "(" ints ")" "," "{" types "}" ")" ";"
    event     := "event" "(" name "," NUMBER ")" ";"
    timer     := "timer" "(" name "," NUMBER ")" ";"
    watch     := "watch" "(" name ")" ";"
    rule      := [IDENT] ["delete"] atom ":-" body ";"
    body      := elem ("," elem)*
    elem      := "notin" atom | VARIABLE ":=" expr | atom | expr

Disambiguation conventions (as in P2):

* builtin function names begin with ``f_``; any other ``ident(`` in a body
  is a predicate atom,
* aggregate head arguments are ``count<V>``, ``sum<V>``, ``min<V>``,
  ``max<V>``, ``avg<V>``, ``list<V>`` plus the sketch aggregates
  ``percentile<V>`` and ``count_distinct_approx<V>`` (``count<*>``
  counts rows per group),
* a rule may be given an explicit name by prefixing it with an identifier;
  unnamed rules receive ``<program>_r<N>``.
"""

from __future__ import annotations

from typing import Optional

from .ast import (
    AGGREGATE_FUNCS,
    AggSpec,
    Assign,
    Atom,
    BinOp,
    BodyElem,
    Cond,
    Const,
    Decl,
    EventDecl,
    Expr,
    FuncCall,
    HeadArg,
    NotIn,
    Program,
    Rule,
    TableDecl,
    TimerDecl,
    UnOp,
    Var,
)
from .errors import ParseError
from .lexer import Token, tokenize

_COMPARISON_OPS = {"==", "!=", "<", "<=", ">", ">="}


class Parser:
    """Single-use parser over a token stream."""

    def __init__(self, tokens: list[Token]):
        self._toks = tokens
        self._pos = 0
        self._rule_counter = 0
        self._program_name = "anonymous"
        self.watches: list[str] = []

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._toks) - 1)
        return self._toks[idx]

    def _next(self) -> Token:
        tok = self._toks[self._pos]
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        tok = self._peek()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise ParseError(
                f"expected {want!r}, found {tok.value!r}", tok.line, tok.col
            )
        return self._next()

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        tok = self._peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self._next()
        return None

    # -- toplevel -----------------------------------------------------------

    def parse_program(self) -> Program:
        self._expect("KEYWORD", "program")
        name = self._expect("IDENT").value
        self._expect("OP", ";")
        self._program_name = name
        decls: list[Decl] = []
        rules: list[Rule] = []
        while self._peek().kind != "EOF":
            tok = self._peek()
            if tok.kind == "KEYWORD" and tok.value == "define":
                decls.append(self._parse_define())
            elif tok.kind == "KEYWORD" and tok.value == "event":
                decls.append(self._parse_event())
            elif tok.kind == "KEYWORD" and tok.value == "timer":
                decls.append(self._parse_timer())
            elif tok.kind == "KEYWORD" and tok.value == "watch":
                self._parse_watch()
            else:
                rules.append(self._parse_rule())
        return Program(name=name, decls=tuple(decls), rules=tuple(rules))

    # -- declarations -------------------------------------------------------

    def _parse_define(self) -> TableDecl:
        self._expect("KEYWORD", "define")
        self._expect("OP", "(")
        name = self._expect("IDENT").value
        self._expect("OP", ",")
        self._expect("KEYWORD", "keys")
        self._expect("OP", "(")
        keys: list[int] = []
        if not self._accept("OP", ")"):
            keys.append(int(self._expect("NUMBER").value))
            while self._accept("OP", ","):
                keys.append(int(self._expect("NUMBER").value))
            self._expect("OP", ")")
        self._expect("OP", ",")
        self._expect("OP", "{")
        types: list[str] = []
        types.append(self._parse_type_name())
        while self._accept("OP", ","):
            types.append(self._parse_type_name())
        self._expect("OP", "}")
        self._expect("OP", ")")
        self._expect("OP", ";")
        return TableDecl(name=name, keys=tuple(keys), types=tuple(types))

    def _parse_type_name(self) -> str:
        tok = self._peek()
        if tok.kind in ("IDENT", "VARIABLE"):
            return self._next().value
        raise ParseError(f"expected type name, found {tok.value!r}", tok.line, tok.col)

    def _parse_event(self) -> EventDecl:
        self._expect("KEYWORD", "event")
        self._expect("OP", "(")
        name = self._expect("IDENT").value
        self._expect("OP", ",")
        arity = int(self._expect("NUMBER").value)
        self._expect("OP", ")")
        self._expect("OP", ";")
        return EventDecl(name=name, arity=arity)

    def _parse_timer(self) -> TimerDecl:
        self._expect("KEYWORD", "timer")
        self._expect("OP", "(")
        name = self._expect("IDENT").value
        self._expect("OP", ",")
        period = int(self._expect("NUMBER").value)
        self._expect("OP", ")")
        self._expect("OP", ";")
        return TimerDecl(name=name, period_ms=period)

    def _parse_watch(self) -> None:
        self._expect("KEYWORD", "watch")
        self._expect("OP", "(")
        self.watches.append(self._expect("IDENT").value)
        self._expect("OP", ")")
        self._expect("OP", ";")

    # -- rules --------------------------------------------------------------

    def _parse_rule(self) -> Rule:
        name: Optional[str] = None
        # `ident ident(` or `ident delete` means the first ident is a rule name.
        if self._peek().kind == "IDENT":
            nxt = self._peek(1)
            if (nxt.kind == "IDENT" and self._peek(2).value == "(") or (
                nxt.kind == "KEYWORD" and nxt.value == "delete"
            ):
                name = self._next().value
        is_delete = bool(self._accept("KEYWORD", "delete"))
        head = self._parse_atom(allow_agg=True)
        deferred = False
        if self._peek().value == "@" and self._peek(1).value == "next":
            self._next()
            self._next()
            deferred = True
        self._expect("OP", ":-")
        body: list[BodyElem] = [self._parse_body_elem()]
        while self._accept("OP", ","):
            body.append(self._parse_body_elem())
        self._expect("OP", ";")
        if name is None:
            self._rule_counter += 1
            name = f"{self._program_name}_r{self._rule_counter}"
        return Rule(
            name=name,
            head=head,
            body=tuple(body),
            delete=is_delete,
            deferred=deferred,
        )

    def _parse_body_elem(self) -> BodyElem:
        tok = self._peek()
        if tok.kind == "KEYWORD" and tok.value == "notin":
            self._next()
            return NotIn(self._parse_atom(allow_agg=False))
        if tok.kind == "VARIABLE" and self._peek(1).value == ":=":
            var = Var(self._next().value)
            self._next()  # :=
            return Assign(var=var, expr=self._parse_expr())
        if (
            tok.kind == "IDENT"
            and not tok.value.startswith("f_")
            and self._peek(1).value == "("
        ):
            return self._parse_atom(allow_agg=False)
        return Cond(self._parse_expr())

    def _parse_atom(self, allow_agg: bool) -> Atom:
        name_tok = self._expect("IDENT")
        self._expect("OP", "(")
        args: list[HeadArg] = []
        loc: Optional[int] = None
        if not self._accept("OP", ")"):
            while True:
                if self._accept("OP", "@"):
                    if loc is not None:
                        raise ParseError(
                            "multiple location specifiers in one atom",
                            name_tok.line,
                            name_tok.col,
                        )
                    loc = len(args)
                args.append(self._parse_head_arg(allow_agg))
                if not self._accept("OP", ","):
                    break
            self._expect("OP", ")")
        return Atom(name=name_tok.value, args=tuple(args), loc=loc)

    def _parse_head_arg(self, allow_agg: bool) -> HeadArg:
        tok = self._peek()
        if (
            allow_agg
            and tok.kind == "IDENT"
            and tok.value in AGGREGATE_FUNCS
            and self._peek(1).value == "<"
        ):
            func = self._next().value
            self._expect("OP", "<")
            if self._accept("OP", "*"):
                var = Var("_")
            else:
                var = Var(self._expect("VARIABLE").value)
            self._expect("OP", ">")
            return AggSpec(func=func, var=var)
        return self._parse_expr()

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept("OP", "||"):
            left = BinOp("||", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_comparison()
        while self._accept("OP", "&&"):
            left = BinOp("&&", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        tok = self._peek()
        if tok.kind == "OP" and tok.value in _COMPARISON_OPS:
            op = self._next().value
            return BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            tok = self._peek()
            if tok.kind == "OP" and tok.value in ("+", "-"):
                op = self._next().value
                left = BinOp(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind == "OP" and tok.value in ("*", "/", "%"):
                op = self._next().value
                left = BinOp(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self._accept("OP", "-"):
            return UnOp("-", self._parse_unary())
        if self._accept("OP", "!"):
            return UnOp("!", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.kind == "NUMBER":
            self._next()
            if "." in tok.value:
                return Const(float(tok.value))
            return Const(int(tok.value))
        if tok.kind == "STRING":
            self._next()
            return Const(tok.value)
        if tok.kind == "KEYWORD" and tok.value in ("true", "false"):
            self._next()
            return Const(tok.value == "true")
        if tok.kind == "KEYWORD" and tok.value == "nil":
            self._next()
            return Const(None)
        if tok.kind == "VARIABLE":
            self._next()
            return Var(tok.value)
        if tok.kind == "IDENT":
            # Builtin function call (f_*); bare lowercase idents are invalid.
            if self._peek(1).value == "(":
                name = self._next().value
                self._expect("OP", "(")
                args: list[Expr] = []
                if not self._accept("OP", ")"):
                    args.append(self._parse_expr())
                    while self._accept("OP", ","):
                        args.append(self._parse_expr())
                    self._expect("OP", ")")
                return FuncCall(name=name, args=tuple(args))
            raise ParseError(
                f"bare identifier {tok.value!r} in expression", tok.line, tok.col
            )
        if self._accept("OP", "("):
            inner = self._parse_expr()
            self._expect("OP", ")")
            return inner
        raise ParseError(f"unexpected token {tok.value!r}", tok.line, tok.col)


def parse(source: str) -> Program:
    """Parse Overlog source text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_with_watches(source: str) -> tuple[Program, list[str]]:
    """Like :func:`parse`, additionally returning ``watch(...)`` relations."""
    parser = Parser(tokenize(source))
    program = parser.parse_program()
    return program, parser.watches
