"""The per-node Overlog runtime ("PyJOL").

An :class:`OverlogRuntime` owns one catalog, one evaluator and one inbox.
It is deliberately transport-agnostic: callers (the simulator's
:class:`repro.sim.node.OverlogProcess`, or unit tests) push tuples in with
:meth:`insert` and drive timesteps with :meth:`tick`, receiving the remote
sends back in the :class:`StepResult`.

Stateful builtins registered here:

``f_now()``
    current clock reading (milliseconds of simulated time),
``f_newid()``
    a fresh monotonically increasing integer, unique per runtime,
``f_uid()``
    a fresh globally readable id string ``"<addr>:<n>"``,
``f_rand()``
    a float in [0, 1) from the runtime's seeded RNG,
``f_randint(n)``
    an int in [0, n) from the same RNG,
``f_localaddr()``
    this runtime's network address.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

from ..metrics.registry import NodeMetrics
from .ast import Program, Rule
from .catalog import Catalog, Row
from .errors import CatalogError
from .eval import Evaluator, StepResult
from .functions import FunctionLibrary
from .parser import parse

# An inbox tuple's trace context: (SpanRef, ...) from repro.metrics.trace,
# kept duck-typed here so the engine has no hard dependency on tracing.
TraceContext = tuple


@dataclass
class TimerState:
    name: str
    period_ms: int
    next_fire: int
    fire_count: int = 0


class OverlogRuntime:
    """One node's Overlog engine: program + catalog + inbox + timers."""

    def __init__(
        self,
        program: Program | str,
        address: Any = "localhost",
        seed: int = 0,
        extra_functions: Optional[dict[str, Callable[..., Any]]] = None,
        naive: bool = False,
        compile_plans: bool = True,
        compile_mode: Optional[str] = None,
        metrics: "NodeMetrics | bool | None" = None,
        provenance: bool = False,
        provenance_capacity: Optional[int] = None,
        profile: bool = False,
        profile_sample_every: Optional[int] = None,
    ):
        if isinstance(program, str):
            program = parse(program)
        self.program = program
        self.address = address
        self._now = 0
        self._id_counter = 0
        self._rng = random.Random(seed)

        self.functions = FunctionLibrary(extra_functions)
        self.functions.register("f_now", lambda: self._now)
        self.functions.register("f_newid", self._next_id)
        self.functions.register("f_uid", lambda: f"{self.address}:{self._next_id()}")
        self.functions.register("f_rand", self._rng.random)
        self.functions.register("f_randint", lambda n: self._rng.randrange(n))
        self.functions.register("f_localaddr", lambda: self.address)

        self.catalog = Catalog()
        self.catalog.load(program)
        self.evaluator = Evaluator(
            program.rules,
            self.catalog,
            self.functions,
            address,
            naive=naive,
            compile_plans=compile_plans,
            compile_mode=compile_mode,
        )
        # Always-on runtime metrics (pass metrics=False to measure their
        # cost, as benchmark E8 does).  A NodeMetrics instance may also be
        # passed in to share a registry.
        if metrics is False:
            self.metrics: Optional[NodeMetrics] = None
        elif metrics is None or metrics is True:
            self.metrics = NodeMetrics(str(address))
        else:
            self.metrics = metrics
        if self.metrics is not None:
            self.metrics.bind_evaluator(self.evaluator)
        # Optional provenance ledger + sampled plan profiler, both off by
        # default (the evaluator's hot path then pays only None checks).
        # Imported lazily so the engine has no hard provenance dependency.
        self.ledger = None
        self.profiler = None
        if provenance:
            from ..provenance.ledger import DerivationLedger

            self.ledger = DerivationLedger(
                node=address,
                **(
                    {"capacity": provenance_capacity}
                    if provenance_capacity is not None
                    else {}
                ),
            )
            self.evaluator.attach_ledger(self.ledger)
        if profile:
            from ..provenance.profiler import PlanProfiler

            self.profiler = PlanProfiler(
                **(
                    {"sample_every": profile_sample_every}
                    if profile_sample_every is not None
                    else {}
                ),
            )
            self.evaluator.attach_profiler(self.profiler)

        self._inbox: list[tuple[str, Row, TraceContext, str]] = []
        self.last_step_ctx: TraceContext = ()
        self._deferred_deletes: list[tuple[str, Row]] = []
        self._watchers: dict[str, list[Callable[[Row], None]]] = {}
        self.timers: dict[str, TimerState] = {
            t.name: TimerState(t.name, t.period_ms, next_fire=t.period_ms)
            for t in self.catalog.timers.values()
        }
        self.step_count = 0
        self.total_derivations = 0

    # -- identifiers ---------------------------------------------------------

    def _next_id(self) -> int:
        self._id_counter += 1
        return self._id_counter

    # -- program access (metaprogramming surface) ----------------------------

    def extended(self, extra: Program | str) -> "OverlogRuntime":
        """Return a new runtime running this program merged with ``extra``
        (used by the monitoring rewrite; state is *not* carried over)."""
        if isinstance(extra, str):
            extra = parse(extra)
        merged = self.program.merged(extra)
        return OverlogRuntime(merged, address=self.address)

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self.program.rules

    def add_rule(self, rule: Rule | str) -> None:
        """Install additional rule(s) into the running program.

        Accepts a :class:`Rule` or Overlog rule source text.  Any new
        relations must already be declared.  The evaluator's plan cache is
        invalidated and the affected relations are re-evaluated on the
        next timestep.
        """
        if isinstance(rule, str):
            new_rules = parse(f"program _added;\n{rule}").rules
        else:
            new_rules = (rule,)
        self.program = self.program.with_rules(self.program.rules + new_rules)
        self.evaluator.set_rules(self.program.rules)

    def explain(self, rule_name: Optional[str] = None) -> str:
        """Render the evaluator's compiled join plans (docs/EVALUATOR.md)."""
        return self.evaluator.explain(rule_name)

    def generated_source(self, rule_name: Optional[str] = None) -> str:
        """The Python source the codegen tier generated for a rule's plans
        (all rules when ``rule_name`` is None); explains itself when the
        evaluator runs on a lower tier.  See docs/EVALUATOR.md."""
        planner = self.evaluator.planner
        if planner is None:
            return (
                "(no generated source: "
                f"compile_mode={self.evaluator.compile_mode})"
            )
        return planner.render_source(rule_name)

    # -- provenance debugger (docs/PROVENANCE.md) -----------------------------

    def why(
        self,
        relation: str,
        row: Iterable[Any],
        fmt: str = "text",
        max_depth: int = 64,
    ):
        """Derivation DAG of a tuple, from this node's ledger only (use
        ``Cluster.why`` for cross-node stitching).  Requires the runtime
        to have been built with ``provenance=True``."""
        if self.ledger is None:
            msg = "(provenance ledger disabled: pass provenance=True)"
            return msg if fmt == "text" else {"error": msg}
        from ..provenance.why import render_why, why_dag

        dag = why_dag(self.ledger, relation, tuple(row), max_depth=max_depth)
        return render_why(dag) if fmt == "text" else dag

    def why_not(self, relation: str, row: Iterable[Any], fmt: str = "text"):
        """Replay candidate rules to explain why a tuple is absent.
        Works without the ledger — it reads only rules and tables."""
        from ..provenance.why import render_why_not, why_not

        report = why_not(self.evaluator, relation, tuple(row))
        return render_why_not(report) if fmt == "text" else report

    def profile_report(self, fmt: str = "text", top: Optional[int] = None):
        """The sampled plan profiler's hot-rules report (requires
        ``profile=True``), through :mod:`repro.metrics.export`."""
        if self.profiler is None:
            msg = "(plan profiler disabled: pass profile=True)"
            return msg if fmt == "text" else {"error": msg}
        report = self.profiler.hot_rules(top=top)
        if fmt == "text":
            from ..metrics.export import render_hot_rules

            return render_hot_rules(report)
        return report

    # -- external interface ---------------------------------------------------

    def insert(
        self,
        relation: str,
        row: Iterable[Any],
        trace: TraceContext = (),
    ) -> None:
        """Queue a tuple for the next timestep.

        ``trace`` carries the causal span context the tuple arrived under
        (see :mod:`repro.metrics.trace`); the step that consumes it runs
        under the union of its inbox contexts.
        """
        self._inbox.append((relation, tuple(row), tuple(trace), "input"))

    def insert_many(self, relation: str, rows: Iterable[Iterable[Any]]) -> None:
        for row in rows:
            self.insert(relation, row)

    def install(self, relation: str, rows: Iterable[Iterable[Any]]) -> None:
        """Directly load facts into a materialized table, outside any
        timestep (bootstrap data: config, initial directory entries...)."""
        table = self.catalog.table(relation)
        for row in rows:
            row = tuple(row)
            table.insert(row)
            if self.ledger is not None:
                self.ledger.record_external("install", relation, row)
        self.evaluator.mark_dirty(relation)

    def watch(self, relation: str, callback: Callable[[Row], None]) -> None:
        """Invoke ``callback(row)`` for every tuple newly derived in
        ``relation``, after each timestep."""
        if not self.catalog.is_declared(relation):
            raise CatalogError(f"cannot watch undeclared relation {relation!r}")
        self._watchers.setdefault(relation, []).append(callback)

    def rows(self, relation: str) -> list[Row]:
        """Snapshot of a materialized table's contents."""
        return list(self.catalog.table(relation).scan())

    def lookup(self, relation: str, **col_values: Any) -> list[Row]:
        """Rows of ``relation`` where column index ``_0``/``_1``/... equals
        the given value, e.g. ``lookup("file", _1="root")``."""
        filters = {int(k[1:]): v for k, v in col_values.items()}
        return [
            row
            for row in self.rows(relation)
            if all(row[i] == v for i, v in filters.items())
        ]

    # -- timers ----------------------------------------------------------------

    def next_timer_fire(self) -> Optional[int]:
        """Earliest pending timer deadline, or None when the program has no
        timers."""
        if not self.timers:
            return None
        return min(t.next_fire for t in self.timers.values())

    def _due_timer_tuples(self, now: int) -> list[tuple[str, Row]]:
        fired: list[tuple[str, Row]] = []
        for timer in self.timers.values():
            while timer.next_fire <= now:
                timer.fire_count += 1
                fired.append((timer.name, (timer.fire_count, now)))
                timer.next_fire += timer.period_ms
        return fired

    # -- timestep ---------------------------------------------------------------

    @property
    def has_pending_work(self) -> bool:
        return bool(self._inbox) or bool(self._deferred_deletes)

    def tick(self, now: Optional[int] = None) -> StepResult:
        """Run one timestep at simulated time ``now`` (ms).

        Drains the inbox plus any timers due by ``now``.  Returns the step's
        effects; remote sends must be delivered by the caller.
        """
        if now is not None:
            if now < self._now:
                raise ValueError(f"clock moved backwards: {now} < {self._now}")
            self._now = now
        entries = self._inbox
        self._inbox = []
        entries.extend(
            (rel, row, (), "timer")
            for rel, row in self._due_timer_tuples(self._now)
        )
        # The step's causal context is the (first-seen ordered, hence
        # deterministic) union of its inbox tuples' contexts; derived
        # effects — sends, @next deferrals — inherit it.
        ctx: list = []
        seen_refs: set = set()
        for _rel, _row, trace, _src in entries:
            for ref in trace:
                if ref not in seen_refs:
                    seen_refs.add(ref)
                    ctx.append(ref)
        step_ctx = tuple(ctx)
        if self.ledger is not None:
            self.ledger.begin_step(self.step_count + 1, self._now, step_ctx)
            for rel, row, trace, src in entries:
                # Deferred (@next) re-arrivals already have a "next"
                # entry recording the deriving rule — a fresh "input"
                # entry would shadow it.
                if src != "deferred":
                    self.ledger.record_external(src, rel, row, trace)
        pre_deletes = self._deferred_deletes
        self._deferred_deletes = []
        result = self.evaluator.step(
            [(rel, row) for rel, row, _, _ in entries], pre_deletes=pre_deletes
        )
        # @next derivations become next step's inbox / pre-deletions.
        self._inbox.extend(
            (rel, row, step_ctx, "deferred")
            for rel, row in result.deferred_inserts
        )
        self._deferred_deletes.extend(result.deferred_deletes)
        self.last_step_ctx = step_ctx
        self.step_count += 1
        self.total_derivations += result.derivation_count
        if self.metrics is not None:
            self.metrics.record_step(self._now, result)
        self._notify_watchers(result)
        return result

    def run_to_quiescence(self, max_steps: int = 1000) -> list[StepResult]:
        """Tick repeatedly (same clock reading) until the inbox is empty.

        Only useful for single-node programs; networked programs should be
        driven by the simulator.
        """
        results = []
        steps = 0
        while self.has_pending_work:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("runtime did not quiesce")
            results.append(self.tick())
        return results

    def _notify_watchers(self, result: StepResult) -> None:
        for relation, callbacks in self._watchers.items():
            for row in result.fired_rows(relation):
                for cb in callbacks:
                    cb(row)
