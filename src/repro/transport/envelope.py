"""Typed envelopes: the wire unit of the transport contract.

An :class:`Envelope` carries a *batch* of ``(relation, row)`` deltas from
one address to another, plus the per-delta tracer message ids that let
causal traces survive batching (see :mod:`repro.metrics.trace`).  The
pre-envelope network sent one message per tuple; REX-style delta
shipping batches every tuple a fixpoint produces for the same
destination into a single envelope — the :class:`Outbox` implements that
flush-on-fixpoint policy for nodes.

Envelopes also know how to encode themselves to bytes (a deterministic
Python-literal codec) so the asyncio backend can run over real TCP
sockets, not just in-process queues.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .base import Address, Delta

_HEADER_BYTES = 16  # per-envelope framing overhead charged by the model


def estimate_row_size(row: tuple) -> int:
    """Rough serialized size of one row (strings/bytes by length,
    scalars as machine words, nested tuples recursively)."""
    size = 8
    for value in row:
        if isinstance(value, (str, bytes)):
            size += len(value)
        elif isinstance(value, tuple):
            size += estimate_row_size(value)
        else:
            size += 8
    return size


def estimate_delta_size(relation: str, row: tuple) -> int:
    return len(relation) + estimate_row_size(row)


@dataclass(frozen=True)
class Envelope:
    """A batch of deltas on one (src, dst) link.

    ``mids`` runs parallel to ``deltas``: the tracer message id captured
    at buffer time for each traced delta (None when untraced), consumed
    at delivery to reopen child spans.  ``seq`` is the sender's per-link
    sequence number — debugging aid and FIFO witness.
    """

    src: Address
    dst: Address
    deltas: tuple[Delta, ...]
    mids: tuple[Optional[int], ...] = ()
    seq: int = 0
    size_bytes: int = field(default=0, compare=False)

    @staticmethod
    def make(
        src: Address,
        dst: Address,
        deltas: Iterable[Delta],
        mids: Iterable[Optional[int]] = (),
        seq: int = 0,
    ) -> "Envelope":
        deltas = tuple(deltas)
        mids = tuple(mids)
        if mids and len(mids) != len(deltas):
            raise ValueError("mids must parallel deltas")
        size = _HEADER_BYTES + sum(
            estimate_delta_size(rel, row) for rel, row in deltas
        )
        return Envelope(src, dst, deltas, mids, seq, size)

    @staticmethod
    def single(
        src: Address,
        dst: Address,
        relation: str,
        row: tuple,
        mid: Optional[int] = None,
        seq: int = 0,
    ) -> "Envelope":
        return Envelope.make(src, dst, ((relation, row),), (mid,), seq)

    def __len__(self) -> int:
        return len(self.deltas)

    def items(self) -> Iterable[tuple[str, tuple, Optional[int]]]:
        """Yield ``(relation, row, mid)`` triples, padding absent mids."""
        mids = self.mids if self.mids else (None,) * len(self.deltas)
        for (relation, row), mid in zip(self.deltas, mids):
            yield relation, row, mid

    # -- wire codec (asyncio TCP endpoints) -----------------------------------

    def encode(self) -> bytes:
        """Deterministic byte encoding: a Python literal, safe to eval
        with :func:`ast.literal_eval` (rows hold only literals: ints,
        floats, strings, bytes, bools, None, nested tuples)."""
        payload = (self.src, self.dst, self.deltas, self.mids, self.seq)
        return repr(payload).encode("utf-8")

    @staticmethod
    def decode(data: bytes) -> "Envelope":
        src, dst, deltas, mids, seq = ast.literal_eval(data.decode("utf-8"))
        return Envelope.make(src, dst, deltas, mids, seq)


class Outbox:
    """Per-node send buffers keyed by destination (per-link buffering).

    Nodes buffer every ``send`` here; the substrate flushes once per
    fixpoint/delivery unit, producing one envelope per destination in
    first-use order (deterministic).  ``flush(batch=False)`` degrades to
    one envelope per delta — the ablation mode benchmark E4 measures.
    """

    def __init__(self, src: Address):
        self.src = src
        self._buffers: dict[Address, list[tuple[str, tuple, Optional[int]]]] = {}
        self._seq: dict[Address, int] = {}

    def add(
        self,
        dst: Address,
        relation: str,
        row: tuple,
        mid: Optional[int] = None,
    ) -> None:
        self._buffers.setdefault(dst, []).append((relation, row, mid))

    def __len__(self) -> int:
        return sum(len(buf) for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop everything unsent (the node crashed mid-step)."""
        self._buffers.clear()

    def _next_seq(self, dst: Address) -> int:
        seq = self._seq.get(dst, 0) + 1
        self._seq[dst] = seq
        return seq

    def flush(self, batch: bool = True) -> list[Envelope]:
        """Drain the buffers into envelopes (one per destination when
        ``batch``, one per delta otherwise)."""
        if not self._buffers:
            return []
        envelopes: list[Envelope] = []
        for dst, entries in self._buffers.items():
            if batch:
                envelopes.append(
                    Envelope.make(
                        self.src,
                        dst,
                        [(rel, row) for rel, row, _ in entries],
                        [mid for _, _, mid in entries],
                        seq=self._next_seq(dst),
                    )
                )
            else:
                envelopes.extend(
                    Envelope.single(
                        self.src, dst, rel, row, mid, seq=self._next_seq(dst)
                    )
                    for rel, row, mid in entries
                )
        self._buffers.clear()
        return envelopes
