"""The transport/execution contract between nodes and their substrate.

The paper's central claim is that the *same* Overlog programs run
unchanged while the substrate underneath them evolves (JOL on EC2 in the
original; a discrete-event simulator or a real asyncio event loop here).
This module pins down the contract that makes that true:

* :class:`Transport` — what a substrate must provide: envelope routing
  (``send``), membership (``register``/``unregister`` with a
  deliver-callback), a clock (``now``), timers (``call_later``) and the
  failure-injection surface (partitions, colocation).
* :class:`TimerHandle` — the cancellable handle ``call_later`` returns.
* :class:`TransportStats` — uniform accounting: *both* envelopes and
  deltas and bytes, so batching wins are visible honestly.

Messages travel as :class:`~repro.transport.envelope.Envelope` objects:
batches of ``(relation, row)`` deltas flushed once per fixpoint, not one
message per tuple.  Two implementations ship with the repo:
:class:`~repro.transport.sim_transport.SimTransport` (deterministic
virtual time) and
:class:`~repro.transport.asyncio_backend.LocalAsyncTransport` (real
concurrency over asyncio queue or TCP endpoints).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, Protocol

if TYPE_CHECKING:
    from ..metrics.registry import MetricsRegistry
    from ..metrics.trace import Tracer
    from .envelope import Envelope

Address = str
Delta = tuple[str, tuple]  # (relation, row)

# What a registered node presents to its transport: a callback invoked
# with each arriving envelope (the cluster installs one per process).
DeliverFn = Callable[["Envelope"], None]


class TimerHandle(Protocol):
    """Cancellable timer returned by :meth:`Transport.call_later`."""

    def cancel(self) -> None: ...

    @property
    def time(self) -> int: ...  # absolute fire time, transport-clock ms

    @property
    def cancelled(self) -> bool: ...


@dataclass
class TransportStats:
    """Uniform accounting across backends.

    ``sent``/``delivered`` count *deltas* (tuples) — the unit the
    protocol layers reason about and what the pre-envelope network
    counted, so historical benchmark numbers stay comparable.  The
    ``envelopes_*`` twins count wire messages; their ratio is the
    batching factor the E4 ablation reports.  Drop counters count
    envelopes; ``deltas_dropped`` totals the tuples inside them.
    """

    sent: int = 0  # deltas handed to the transport
    delivered: int = 0  # deltas handed to a destination
    envelopes_sent: int = 0
    envelopes_delivered: int = 0
    bytes_sent: int = 0
    bytes_delivered: int = 0
    remote_bytes: int = 0  # bytes that crossed machine boundaries
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_dead: int = 0
    deltas_dropped: int = 0
    backpressure_stalls: int = 0


# Back-compat alias: the simulator's pre-envelope stats object.
NetworkStats = TransportStats


class Transport(ABC):
    """Abstract substrate: routes envelopes, owns the clock and timers.

    Shared here: membership of deliver-callbacks, partition/colocation
    bookkeeping, stats, and the optional tracer/metrics hooks.  Concrete
    backends implement :meth:`send` (routing + failure policy) and the
    clock/timer pair.
    """

    def __init__(self) -> None:
        self.stats = TransportStats()
        # Set by the owning cluster after construction; transports only
        # use the tracer to record drops of traced envelopes, and the
        # registry to surface transport counters in cluster dashboards.
        self.tracer: Optional["Tracer"] = None
        self.metrics: Optional["MetricsRegistry"] = None
        # Optional flight recorder (repro.latency.recorder): a bounded
        # per-node ring of recent envelope events, armed by the cluster's
        # enable_flight_recorder().
        self.recorder: Optional[Any] = None
        # Optional per-delta send log for differential testing.
        self.record_sends = False
        self.sent_log: list[tuple[Address, Address, str, tuple]] = []
        self._deliver_fns: dict[Address, DeliverFn] = {}
        self._partition_of: dict[Address, int] = {}
        self._machine_of: dict[Address, int] = {}

    # -- membership -----------------------------------------------------------

    def register(self, address: Address, deliver: DeliverFn) -> None:
        self._deliver_fns[address] = deliver

    def unregister(self, address: Address) -> None:
        self._deliver_fns.pop(address, None)

    def is_registered(self, address: Address) -> bool:
        return address in self._deliver_fns

    # -- partitions -----------------------------------------------------------

    def partition(self, *groups: list[Address]) -> None:
        """Split the network: addresses in different groups can no longer
        communicate.  Unlisted addresses stay in group 0."""
        self._partition_of = {}
        for idx, group in enumerate(groups, start=1):
            for addr in group:
                self._partition_of[addr] = idx

    def heal(self) -> None:
        self._partition_of = {}

    def can_reach(self, src: Address, dst: Address) -> bool:
        return self._partition_of.get(src, 0) == self._partition_of.get(dst, 0)

    # -- colocation -----------------------------------------------------------

    def colocate(self, *groups: list[Address]) -> None:
        """Declare address groups that share a physical machine: transfers
        between them skip the bandwidth term (local disk, not the wire).
        May be called repeatedly; each group gets a fresh machine id."""
        next_id = max(self._machine_of.values(), default=0)
        for group in groups:
            next_id += 1
            for addr in group:
                self._machine_of[addr] = next_id

    def same_machine(self, a: Address, b: Address) -> bool:
        ma = self._machine_of.get(a)
        return ma is not None and ma == self._machine_of.get(b)

    # -- clock & timers -------------------------------------------------------

    @property
    @abstractmethod
    def now(self) -> int:
        """Current transport time in integer milliseconds."""

    @abstractmethod
    def call_later(
        self, delay_ms: int, action: Callable[[], None]
    ) -> TimerHandle:
        """Run ``action`` after ``delay_ms`` transport-clock milliseconds."""

    # -- sending --------------------------------------------------------------

    @abstractmethod
    def send(self, env: "Envelope") -> None:
        """Queue an envelope for delivery to ``env.dst``'s callback.
        Must preserve per-link (src, dst) FIFO order and never deliver a
        delta more than once; delivery may fail (loss/partition/dead
        destination), which is accounted in :attr:`stats`."""

    def send_row(
        self, src: Address, dst: Address, relation: str, row: tuple
    ) -> None:
        """Convenience: wrap one ``(relation, row)`` delta in an envelope
        (tests and ad-hoc drivers; the runtime path batches)."""
        from .envelope import Envelope

        self.send(Envelope.single(src, dst, relation, tuple(row)))

    # -- shared accounting helpers -------------------------------------------

    def _account_sent(self, env: "Envelope") -> None:
        stats = self.stats
        stats.envelopes_sent += 1
        stats.sent += len(env.deltas)
        stats.bytes_sent += env.size_bytes
        if self.metrics is not None:
            self.metrics.counter("transport.envelopes_sent").inc()
            self.metrics.counter("transport.deltas_sent").inc(len(env.deltas))
            self.metrics.counter("transport.bytes_sent").inc(env.size_bytes)
        if self.record_sends:
            self.sent_log.extend(
                (env.src, env.dst, relation, row)
                for relation, row in env.deltas
            )
        # Envelope lifecycle: the delta left its outbox and hit the wire.
        # send->xmit on the same trace span is outbox batching wait.
        tracer = self.tracer
        if tracer is not None:
            for mid in env.mids:
                tracer.on_xmit(mid)
        if self.recorder is not None:
            self.recorder.record_envelope(env.src, "env_out", env)

    def _note_stall(self, env: "Envelope", phase: str) -> None:
        """Record a backpressure-stall boundary on the envelope's traced
        deltas (``phase``: ``begin``/``end``) and in the flight ring."""
        tracer = self.tracer
        if tracer is not None:
            for mid in env.mids:
                tracer.on_stall(mid, phase)
        if self.recorder is not None:
            self.recorder.record(
                env.src, f"stall_{phase}", dst=env.dst, seq=env.seq
            )

    def _account_delivered(self, env: "Envelope") -> None:
        stats = self.stats
        stats.envelopes_delivered += 1
        stats.delivered += len(env.deltas)
        stats.bytes_delivered += env.size_bytes
        if self.metrics is not None:
            self.metrics.counter("transport.envelopes_delivered").inc()
        if self.recorder is not None:
            self.recorder.record_envelope(env.dst, "env_in", env)

    def _account_dropped(self, env: "Envelope", reason: str) -> None:
        stats = self.stats
        if reason == "loss":
            stats.dropped_loss += 1
        elif reason == "partition":
            stats.dropped_partition += 1
        else:
            stats.dropped_dead += 1
        stats.deltas_dropped += len(env.deltas)
        if self.metrics is not None:
            self.metrics.counter(f"transport.dropped.{reason}").inc()
        tracer = self.tracer
        if tracer is not None:
            for mid in env.mids:
                tracer.on_drop(mid, reason)
        if self.recorder is not None:
            self.recorder.record_envelope(env.src, "env_drop", env, reason=reason)

    def _account_stall(self, src: Address, dst: Address) -> None:
        self.stats.backpressure_stalls += 1
        if self.metrics is not None:
            self.metrics.counter("transport.backpressure_stalls").inc()
            self.metrics.counter(f"transport.stalled_link.{src}->{dst}").inc()
