"""Real asyncio backend: the same contract, actual concurrency.

:class:`LocalAsyncTransport` implements the
:class:`~repro.transport.base.Transport` contract over a live asyncio
event loop instead of virtual time:

* every registered endpoint owns a **bounded inbox queue** and a real
  consumer task that delivers arriving envelopes;
* every (src, dst) link owns a **send buffer** and a sender task that
  moves envelopes onto the destination queue in FIFO order — when the
  bounded queue is full the sender task *blocks* (``await put``) and a
  ``backpressure_stalls`` counter increments; no delta is ever dropped;
* endpoints are **queue- or TCP-backed**: with ``tcp=True`` each
  endpoint listens on a real 127.0.0.1 socket and links ship
  length-prefixed encoded envelopes through StreamWriter/StreamReader;
* ``drain()`` gracefully quiesces the wire before shutdown.

The clock is real time scaled by ``time_scale`` (virtual-ms = elapsed
real ms x scale), so programs written against simulator timings — Paxos
election timeouts, heartbeat periods — run unmodified, just faster if
you ask for it.  :class:`AsyncCluster` wraps the transport in the
cluster surface, so ``Cluster``-based experiment scripts port by
swapping one constructor.
"""

from __future__ import annotations

import asyncio
import random
import struct
from collections import deque
from typing import Callable, Optional

from .base import Address, DeliverFn, Transport
from .base_cluster import BaseCluster
from .envelope import Envelope
from .sim_transport import LatencyModel

_FRAME_HEADER = struct.Struct(">I")  # 4-byte big-endian length prefix


class _AsyncTimerHandle:
    """Adapter: asyncio TimerHandle -> the transport TimerHandle contract."""

    __slots__ = ("_handle", "time", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle, fire_time_ms: int):
        self._handle = handle
        self.time = fire_time_ms
        self._cancelled = False

    def cancel(self) -> None:
        self._handle.cancel()
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class _Endpoint:
    """One registered address: bounded inbox + consumer task (+ server)."""

    def __init__(
        self,
        address: Address,
        deliver: DeliverFn,
        queue_size: int,
        min_dispatch_interval_s: float = 0.0,
    ):
        self.address = address
        self.deliver = deliver
        self.queue: asyncio.Queue[Envelope] = asyncio.Queue(maxsize=queue_size)
        # Slow-consumer knob (tests): minimum pause between deliveries.
        self.min_dispatch_interval_s = min_dispatch_interval_s
        self.task: Optional[asyncio.Task] = None
        self.server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None


class _Link:
    """One (src, dst) wire: FIFO send buffer + sender task."""

    def __init__(self, src: Address, dst: Address):
        self.src = src
        self.dst = dst
        self.buffer: deque[Envelope] = deque()
        self.wakeup = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        self.writer: Optional[asyncio.StreamWriter] = None


class LocalAsyncTransport(Transport):
    """Envelope routing over an asyncio loop (queue or TCP endpoints)."""

    backend = "async"

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        seed: int = 0,
        queue_size: int = 1024,
        time_scale: float = 1.0,
        tcp: bool = False,
    ):
        super().__init__()
        self._loop = loop
        self._t0 = loop.time()
        self.time_scale = time_scale
        self.latency = latency  # None = whatever the loop/wire costs
        self.loss_rate = loss_rate
        self.rng = random.Random(seed)
        self.queue_size = queue_size
        self.tcp = tcp
        self._endpoints: dict[Address, _Endpoint] = {}
        self._links: dict[tuple[Address, Address], _Link] = {}
        # Wire-level conservation counters: drain() waits until every
        # envelope put on the wire has come off it.
        self._wire_out = 0
        self._wire_in = 0
        self._closed = False

    # -- clock & timers -------------------------------------------------------

    @property
    def now(self) -> int:
        return int((self._loop.time() - self._t0) * 1000 * self.time_scale)

    def _to_real_s(self, virtual_ms: float) -> float:
        return virtual_ms / 1000.0 / self.time_scale

    def call_later(self, delay_ms: int, action: Callable[[], None]):
        handle = self._loop.call_later(
            self._to_real_s(max(0, delay_ms)), action
        )
        return _AsyncTimerHandle(handle, self.now + max(0, delay_ms))

    # -- membership -----------------------------------------------------------

    def register(
        self,
        address: Address,
        deliver: DeliverFn,
        queue_size: Optional[int] = None,
        min_dispatch_interval_ms: float = 0.0,
    ) -> None:
        if address in self._endpoints:
            self.unregister(address)
        endpoint = _Endpoint(
            address,
            deliver,
            queue_size if queue_size is not None else self.queue_size,
            self._to_real_s(min_dispatch_interval_ms),
        )
        self._endpoints[address] = endpoint
        self._deliver_fns[address] = deliver
        endpoint.task = self._loop.create_task(
            self._consume(endpoint), name=f"endpoint:{address}"
        )
        if self.tcp:
            if self._loop.is_running():
                # Restart while the loop runs (e.g. restart_at timer):
                # bring the listener up as a task; links wait for the port.
                self._loop.create_task(self._start_server(endpoint))
            else:
                self._loop.run_until_complete(self._start_server(endpoint))

    async def _start_server(self, endpoint: _Endpoint) -> None:
        server = await asyncio.start_server(
            lambda r, w: self._serve_connection(endpoint, r, w),
            host="127.0.0.1",
            port=0,
        )
        endpoint.server = server
        endpoint.port = server.sockets[0].getsockname()[1]

    def unregister(self, address: Address) -> None:
        endpoint = self._endpoints.pop(address, None)
        self._deliver_fns.pop(address, None)
        if endpoint is None:
            return
        if endpoint.task is not None:
            endpoint.task.cancel()
        if endpoint.server is not None:
            endpoint.server.close()
        # Envelopes still queued for a dead endpoint are lost, like
        # messages in flight to a crashed simulator node.
        while not endpoint.queue.empty():
            env = endpoint.queue.get_nowait()
            self._wire_in += 1
            self._account_dropped(env, "dead")
        # Sender tasks blocked on the dead queue stay parked until their
        # link delivers to a fresh registration (restart) or is closed.

    # -- sending --------------------------------------------------------------

    def send(self, env: Envelope) -> None:
        """Synchronous enqueue onto the (src, dst) link; the link's
        sender task moves it to the destination, blocking on a full
        bounded queue (backpressure) rather than ever dropping."""
        if self._closed:
            return
        self._account_sent(env)
        if not self.can_reach(env.src, env.dst):
            self._account_dropped(env, "partition")
            return
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            self._account_dropped(env, "loss")
            return
        if not self.same_machine(env.src, env.dst):
            self.stats.remote_bytes += env.size_bytes
        link = self._links.get((env.src, env.dst))
        if link is None:
            link = _Link(env.src, env.dst)
            self._links[(env.src, env.dst)] = link
            link.task = self._loop.create_task(
                self._pump_link(link), name=f"link:{env.src}->{env.dst}"
            )
        self._wire_out += 1
        link.buffer.append(env)
        link.wakeup.set()

    async def _pump_link(self, link: _Link) -> None:
        """Sender task: drain the link buffer in FIFO order."""
        while True:
            await link.wakeup.wait()
            link.wakeup.clear()
            while link.buffer:
                env = link.buffer[0]
                if self.latency is not None:
                    delay = self.latency.sample(
                        self.rng, size_bytes=env.size_bytes
                    )
                    if delay > 0:
                        await asyncio.sleep(self._to_real_s(delay))
                # Delivery-time checks mirror the simulator: an envelope
                # in flight when the link partitions is lost; one in
                # flight when the partition heals goes through.
                if not self.can_reach(env.src, env.dst):
                    link.buffer.popleft()
                    self._wire_in += 1
                    self._account_dropped(env, "partition")
                    continue
                endpoint = self._endpoints.get(env.dst)
                if endpoint is None:
                    link.buffer.popleft()
                    self._wire_in += 1
                    self._account_dropped(env, "dead")
                    continue
                if self.tcp:
                    await self._transmit_tcp(link, endpoint, env)
                else:
                    await self._transmit_queue(endpoint, env)
                link.buffer.popleft()

    async def _transmit_queue(
        self, endpoint: _Endpoint, env: Envelope
    ) -> None:
        if endpoint.queue.full():
            # Bounded-queue backpressure: the sender blocks until the
            # consumer makes room; the stall is visible in the metrics
            # registry (and on the blocked deltas' trace spans as a
            # stall_begin/stall_end pair) and nothing is dropped.
            self._account_stall(env.src, env.dst)
            self._note_stall(env, "begin")
            await endpoint.queue.put(env)
            self._note_stall(env, "end")
        else:
            await endpoint.queue.put(env)

    async def _transmit_tcp(
        self, link: _Link, endpoint: _Endpoint, env: Envelope
    ) -> None:
        while endpoint.port is None:
            await asyncio.sleep(0.001)  # listener still coming up
        if link.writer is None or link.writer.is_closing():
            _reader, link.writer = await asyncio.open_connection(
                "127.0.0.1", endpoint.port
            )
        payload = env.encode()
        link.writer.write(_FRAME_HEADER.pack(len(payload)) + payload)
        # drain() applies TCP flow control: a receiver that stops
        # reading (full bounded queue) eventually blocks us here.
        await link.writer.drain()

    async def _serve_connection(
        self,
        endpoint: _Endpoint,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                header = await reader.readexactly(_FRAME_HEADER.size)
                (length,) = _FRAME_HEADER.unpack(header)
                env = Envelope.decode(await reader.readexactly(length))
                if endpoint.queue.full():
                    self._account_stall(env.src, env.dst)
                    self._note_stall(env, "begin")
                    await endpoint.queue.put(env)
                    self._note_stall(env, "end")
                else:
                    await endpoint.queue.put(env)
        except (
            asyncio.IncompleteReadError,
            asyncio.CancelledError,
            ConnectionResetError,
        ):
            pass
        finally:
            writer.close()

    async def _consume(self, endpoint: _Endpoint) -> None:
        """Consumer task: one per endpoint, delivers envelopes in order."""
        while True:
            env = await endpoint.queue.get()
            self._wire_in += 1
            if endpoint.min_dispatch_interval_s > 0:
                await asyncio.sleep(endpoint.min_dispatch_interval_s)
            self._account_delivered(env)
            endpoint.deliver(env)

    # -- lifecycle ------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Envelopes on the wire: link buffers + queues + TCP frames."""
        return self._wire_out - self._wire_in

    async def drain(self, timeout_ms: float = 5000.0, settle: int = 3) -> bool:
        """Graceful drain: wait until the wire has been quiet (no
        in-flight envelopes) for ``settle`` consecutive polls.  Returns
        False on timeout with traffic still moving."""
        deadline = self._loop.time() + timeout_ms / 1000.0
        quiet = 0
        while quiet < settle:
            if self._loop.time() > deadline:
                return False
            if self.in_flight == 0:
                quiet += 1
            else:
                quiet = 0
            await asyncio.sleep(0.002)
        return True

    def close(self) -> None:
        """Tear down every task, server and connection."""
        if self._closed:
            return
        self._closed = True
        for endpoint in self._endpoints.values():
            if endpoint.task is not None:
                endpoint.task.cancel()
            if endpoint.server is not None:
                endpoint.server.close()
        for link in self._links.values():
            if link.task is not None:
                link.task.cancel()
            if link.writer is not None:
                link.writer.close()
        self._endpoints.clear()
        self._links.clear()
        self._deliver_fns.clear()


class AsyncCluster(BaseCluster):
    """A cluster of processes over :class:`LocalAsyncTransport`.

    The same surface as :class:`repro.sim.cluster.Cluster` — ``add``,
    ``run_for``, ``run_until``, crash/partition controls, observability
    — but nodes execute as live asyncio tasks over queue or TCP
    endpoints.  ``run_*`` drive the loop from synchronous code, so
    experiment scripts stay imperative; call :meth:`shutdown` when done.

    ``time_scale`` compresses real time: at ``time_scale=20`` a program
    whose election timeout is 1000 (virtual) ms fires after 50 real ms.
    """

    backend = "async"

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        batching: bool = True,
        queue_size: int = 1024,
        time_scale: float = 1.0,
        tcp: bool = False,
    ):
        self._loop = asyncio.new_event_loop()
        transport = LocalAsyncTransport(
            self._loop,
            latency=latency,
            loss_rate=loss_rate,
            seed=seed,
            queue_size=queue_size,
            time_scale=time_scale,
            tcp=tcp,
        )
        super().__init__(transport, batching=batching)
        self.seed = seed
        self._closed = False

    # -- running --------------------------------------------------------------

    def run_for(self, duration_ms: int) -> None:
        self._loop.run_until_complete(
            asyncio.sleep(self.transport._to_real_s(duration_ms))
        )

    def run_until(
        self, condition: Callable[[], bool], max_time_ms: int
    ) -> bool:
        async def waiter() -> bool:
            deadline = self._loop.time() + self.transport._to_real_s(
                max_time_ms - self.now
            )
            while not condition():
                if self._loop.time() >= deadline:
                    return condition()
                await asyncio.sleep(0.001)
            return True

        return self._loop.run_until_complete(waiter())

    def drain(self, timeout_ms: float = 5000.0) -> bool:
        """Run the loop until in-flight envelopes settle to zero."""
        return self._loop.run_until_complete(
            self.transport.drain(timeout_ms=timeout_ms)
        )

    def shutdown(self) -> None:
        """Graceful drain, then tear the loop down."""
        if self._closed:
            return
        self._closed = True
        try:
            self._loop.run_until_complete(self.transport.drain())
        finally:
            self.transport.close()
            # Let task cancellations unwind before closing the loop.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

    def __enter__(self) -> "AsyncCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
