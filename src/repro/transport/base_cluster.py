"""Backend-agnostic cluster: processes + observability over a Transport.

:class:`BaseCluster` owns everything that is *not* substrate-specific —
the process registry, crash/restart/partition controls, the metrics
aggregator, the tracer and cross-node provenance — and talks to the
substrate only through the :class:`~repro.transport.base.Transport`
contract.  The two concrete clusters are
:class:`repro.sim.cluster.Cluster` (deterministic discrete-event time)
and :class:`repro.transport.asyncio_backend.AsyncCluster` (real
concurrency); BOOM-FS, BOOM-MR, Paxos and the Hadoop baseline run
unmodified on either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..metrics import ClusterMetrics, MetricsRegistry, Tracer
from ..provenance.why import ClusterProvenance
from .base import Address, TimerHandle, Transport
from .envelope import Envelope

if TYPE_CHECKING:
    from ..sim.node import Process


class BaseCluster:
    """A cluster of processes over one pluggable transport."""

    #: Stamped into benchmark reports so A/E trajectories stay comparable.
    backend = "base"

    def __init__(self, transport: Transport, batching: bool = True):
        # Observability: one cluster-wide metrics aggregator (every node's
        # registry is adopted into it on attach) and one tracer driven by
        # the transport clock (see docs/OBSERVABILITY.md).
        self.metrics = ClusterMetrics()
        self.tracer = Tracer(clock=lambda: self.transport.now)
        # Cross-node provenance: nodes built with provenance=True register
        # their derivation ledgers here, and Cluster.why() stitches
        # derivation DAGs across them (docs/PROVENANCE.md).
        self.provenance = ClusterProvenance(tracer=self.tracer)
        self.transport = transport
        transport.tracer = self.tracer
        transport.metrics = self.metrics.adopt(MetricsRegistry("transport"))
        #: Flush-on-fixpoint batching; False degrades to one envelope per
        #: delta (the E4 ablation).
        self.batching = batching
        self.processes: dict[Address, "Process"] = {}
        # Telemetry plane (docs/TELEMETRY.md): set by enable_telemetry;
        # holds (monitor address, interval, transport/trace export flags)
        # so late-added and restarted nodes get wired automatically.
        self._telemetry: Optional[dict] = None
        # Cluster-scoped invariants (docs/OBSERVABILITY.md): set by
        # enable_invariants; every node ships state exports to the
        # monitor, whose Overlog joins them across nodes.
        self._invariants: Optional[dict] = None
        # Flight recorder (docs/OBSERVABILITY.md): set by
        # enable_flight_recorder; dumps per-node post-mortems on crash.
        self.flight_recorder = None

    # -- membership -----------------------------------------------------------

    def add(self, process: "Process") -> "Process":
        if process.address in self.processes:
            raise ValueError(f"duplicate address {process.address}")
        self.processes[process.address] = process
        process.attach(self)
        self.transport.register(
            process.address, lambda env: self._deliver_envelope(process, env)
        )
        with process.sending():
            process.start()
        self._wire_telemetry(process)
        self._wire_state_export(process)
        return process

    def get(self, address: Address) -> "Process":
        return self.processes[address]

    def addresses(self) -> list[Address]:
        return list(self.processes)

    # -- envelope plumbing ----------------------------------------------------

    def _deliver_envelope(self, process: "Process", env: Envelope) -> None:
        """Unpack an arriving envelope into per-delta handler calls, each
        under its own reopened trace context; sends the handlers make are
        batched and flushed once the whole envelope is consumed."""
        tracer = self.tracer
        with process.sending():
            if tracer is None:
                for relation, row, _mid in env.items():
                    process.handle_message(relation, row)
                return
            for relation, row, mid in env.items():
                # The handler runs under the delivered context (child
                # spans of the sender's), never under whatever happened
                # to be ambient.
                ctx = tracer.on_deliver(mid, process.address, relation)
                with tracer.activate(ctx):
                    process.handle_message(relation, row)

    # -- failure injection ----------------------------------------------------

    def crash(self, address: Address) -> None:
        """Fail-stop the node: it stops receiving, sending and ticking.
        All volatile state is lost, including unflushed send buffers."""
        process = self.processes[address]
        if process.crashed:
            return
        process.crashed = True
        process.on_crash()
        process.discard_unsent()
        self.transport.unregister(address)
        if self.flight_recorder is not None:
            self.flight_recorder.on_crash(str(address))

    def restart(self, address: Address) -> None:
        """Bring a crashed node back with empty volatile state."""
        process = self.processes[address]
        if not process.crashed:
            return
        process.crashed = False
        reset = getattr(process, "reset_for_restart", None)
        if reset is not None:
            reset()
        self.transport.register(
            address, lambda env: self._deliver_envelope(process, env)
        )
        with process.sending():
            process.start()
        # A crash kills the node's telemetry and state-export timer
        # chains with the rest of its volatile state; re-arm them like
        # any other bootstrap.
        self._wire_telemetry(process)
        self._wire_state_export(process)
        on_restart = getattr(process, "on_restart", None)
        if on_restart is not None:
            on_restart()

    def crash_at(self, time_ms: int, address: Address) -> None:
        self.schedule_at(time_ms, lambda: self.crash(address))

    def restart_at(self, time_ms: int, address: Address) -> None:
        self.schedule_at(time_ms, lambda: self.restart(address))

    def partition(self, *groups: Iterable[Address]) -> None:
        self.transport.partition(*[list(g) for g in groups])

    def heal(self) -> None:
        self.transport.heal()

    def is_up(self, address: Address) -> bool:
        process = self.processes.get(address)
        return process is not None and not process.crashed

    # -- time -----------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.transport.now

    def schedule(
        self, delay_ms: int, action: Callable[[], None]
    ) -> TimerHandle:
        return self.transport.call_later(delay_ms, action)

    def schedule_at(
        self, time_ms: int, action: Callable[[], None]
    ) -> TimerHandle:
        return self.transport.call_later(max(0, time_ms - self.now), action)

    # -- running (backend-specific) -------------------------------------------

    def run_for(self, duration_ms: int) -> None:
        raise NotImplementedError

    def run_until(
        self, condition: Callable[[], bool], max_time_ms: int
    ) -> bool:
        """Run until ``condition()`` holds; True when it was reached."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Gracefully drain and release the substrate (no-op for
        backends without background machinery)."""

    # -- observability --------------------------------------------------------

    @property
    def network(self) -> Transport:
        """Legacy alias from the pre-transport layering (stats, partition
        checks); prefer :attr:`transport` in new code."""
        return self.transport

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot(now_ms=self.now)

    def dashboard(self) -> str:
        """Text snapshot of cluster-wide metrics (operator view)."""
        return self.metrics.render_dashboard(now_ms=self.now)

    def export_metrics_jsonl(self, path):
        return self.metrics.export_jsonl(path, now_ms=self.now)

    def export_traces_jsonl(self, path) -> None:
        self.tracer.export_jsonl(path)

    def why(self, node: Address, relation: str, row, fmt: str = "text"):
        """Cross-node derivation DAG of ``(relation, row)`` as recorded by
        ``node``'s ledger, stitched through every registered ledger and
        the tracer.  Requires the node to run with ``provenance=True``."""
        return self.provenance.why(node, relation, row, fmt=fmt)

    # -- latency accounting (docs/OBSERVABILITY.md) ----------------------------

    def latency_report(self, trace_id: str, fmt: str = "text"):
        """Critical-path latency attribution for one trace: where the
        request's wall time went (compute / batch / stall / network /
        timer), per node and per rule.  ``fmt``: ``text``, ``json`` or
        ``report`` (the :class:`~repro.latency.LatencyReport` itself)."""
        from ..latency import critical_path

        report = critical_path(self.tracer, trace_id)
        if report is None:
            return None if fmt == "report" else f"(no such trace {trace_id})"
        if fmt == "json":
            return report.to_json()
        if fmt == "report":
            return report
        return report.render_text()

    def enable_flight_recorder(
        self,
        capacity: int = 512,
        directory=None,
        dump_on: Iterable[str] = ("crash", "alarm"),
    ):
        """Arm a :class:`~repro.latency.FlightRecorder`: bounded per-node
        rings of recent envelopes, span events and alarms, auto-dumped as
        deterministic JSONL post-mortems on crash and/or alarm."""
        from ..latency import FlightRecorder

        recorder = FlightRecorder(
            capacity=capacity,
            directory=directory,
            dump_on=dump_on,
            clock=lambda: self.transport.now,
        )
        self.flight_recorder = recorder
        self.transport.recorder = recorder
        self.tracer.add_listener(recorder.on_trace_event)
        return recorder

    # -- telemetry plane (docs/TELEMETRY.md) -----------------------------------

    def enable_telemetry(
        self,
        monitor: Address = "monitor",
        interval_ms: Optional[int] = 1000,
        include_transport: bool = True,
        include_traces: bool = True,
        per_op_latency: bool = False,
        alert_packs: Optional[Iterable[str]] = None,
        extra_source: Optional[str] = None,
    ):
        """Turn the telemetry plane on: every node (current and future)
        ships its registry to ``monitor`` as ``telemetry`` tuples every
        ``interval_ms``; a :class:`~repro.telemetry.monitor.MonitorProcess`
        is created at that address unless one is already a member.

        ``include_transport`` also exports the transport-scope registry
        (backpressure stalls, envelope counters) — it has no owning node,
        so the cluster injects it at the monitor directly.
        ``include_traces`` folds PR 1 trace spans into an end-to-end
        ``request.latency_ms`` percentile payload the same way;
        ``per_op_latency`` additionally publishes one digest per
        operation type (keyed by the first token of each trace's name),
        feeding the per-op p99 SLO alert pack.
        ``interval_ms=None`` arms no timers: tests drive deterministic
        rounds via ``publish_telemetry(clock=...)`` themselves.
        """
        from ..telemetry.alerts import DEFAULT_ALERT_PACKS
        from ..telemetry.monitor import MonitorProcess

        packs = DEFAULT_ALERT_PACKS if alert_packs is None else tuple(alert_packs)
        if monitor not in self.processes:
            self.add(
                MonitorProcess(
                    monitor, alert_packs=packs, extra_source=extra_source
                )
            )
        self._telemetry = {
            "monitor": monitor,
            "interval_ms": interval_ms,
            "include_transport": include_transport,
            "include_traces": include_traces,
            "per_op_latency": per_op_latency,
        }
        for process in list(self.processes.values()):
            self._wire_telemetry(process)
        if interval_ms is not None and (include_transport or include_traces):
            self.schedule(interval_ms, self._cluster_telemetry_tick)
        return self.processes[monitor]

    def _wire_telemetry(self, process: "Process") -> None:
        cfg = self._telemetry
        if cfg is None or process.address == cfg["monitor"]:
            return
        process.enable_telemetry(cfg["monitor"], cfg["interval_ms"])

    def _cluster_telemetry_tick(self) -> None:
        cfg = self._telemetry
        if cfg is None or cfg["interval_ms"] is None:
            return
        self.publish_cluster_telemetry()
        self.schedule(cfg["interval_ms"], self._cluster_telemetry_tick)

    def publish_cluster_telemetry(self, clock: Optional[int] = None) -> int:
        """Export the cluster-owned telemetry sources — the transport
        registry and the trace-latency fold — by injecting at the
        monitor (neither has an owning process to send from).  Returns
        the tuple count."""
        cfg = self._telemetry
        if cfg is None:
            return 0
        monitor = self.processes.get(cfg["monitor"])
        if monitor is None or monitor.crashed:
            return 0
        from ..telemetry.export import telemetry_rows, trace_latency_rows

        clock = self.now if clock is None else clock
        rows: list[tuple] = []
        if cfg["include_transport"]:
            registry = self.metrics.registries.get("transport")
            if registry is not None:
                rows.extend(
                    telemetry_rows(registry, node="transport", clock=clock)
                )
        if cfg["include_traces"]:
            rows.extend(
                trace_latency_rows(
                    self.tracer,
                    clock=clock,
                    per_op=cfg.get("per_op_latency", False),
                )
            )
        for row in rows:
            monitor.inject("telemetry", row)
        return len(rows)

    # -- cluster-scoped invariants (docs/OBSERVABILITY.md) ---------------------

    def enable_invariants(
        self,
        packs: Optional[Iterable[str]] = None,
        monitor: Address = "monitor",
        interval_ms: Optional[int] = 1000,
    ):
        """Turn cluster-scoped invariant checking on: every node
        (current and future) ships its :meth:`~repro.sim.node.Process.
        state_export_rows` snapshot to ``monitor`` every ``interval_ms``,
        where the :mod:`~repro.monitoring.global_invariants` packs join
        the exports across nodes and derive ``invariant_violation``
        events (recorded on the monitor's ``violation_log``, explained
        by ``why_violation()``, dumped by a flight recorder armed with
        ``dump_on=("violation", ...)``).

        The monitor's rule set is fixed at construction, so call this
        *before* ``enable_telemetry`` (this creates the monitor process
        with both the invariant packs and the default alert packs; a
        later ``enable_telemetry`` on the same address reuses it).  If
        a monitor already exists, its program must already declare
        ``invariant_violation`` — e.g. built with
        ``extra_source=global_invariants_source()`` — else this raises.

        ``interval_ms=None`` arms no timers: deterministic tests drive
        explicit rounds via ``publish_state(clock=...)`` themselves.
        """
        from ..monitoring.global_invariants import global_invariants_source
        from ..telemetry.monitor import MonitorProcess

        if monitor not in self.processes:
            self.add(
                MonitorProcess(
                    monitor, extra_source=global_invariants_source(packs)
                )
            )
        else:
            runtime = getattr(self.processes[monitor], "runtime", None)
            declared = runtime is not None and runtime.catalog.is_declared(
                "invariant_violation"
            )
            if not declared:
                raise RuntimeError(
                    f"process {monitor!r} exists but its program has no "
                    "invariant_violation relation; call enable_invariants "
                    "before enable_telemetry, or build the monitor with "
                    "extra_source=global_invariants_source()"
                )
        self._invariants = {"monitor": monitor, "interval_ms": interval_ms}
        for process in list(self.processes.values()):
            self._wire_state_export(process)
        return self.processes[monitor]

    def _wire_state_export(self, process: "Process") -> None:
        cfg = self._invariants
        if cfg is None or process.address == cfg["monitor"]:
            return
        process.enable_state_export(cfg["monitor"], cfg["interval_ms"])

    def publish_cluster_state(self, clock: Optional[int] = None) -> int:
        """Drive one explicit state-export round on every live node
        (deterministic tests use this with ``interval_ms=None``).
        Returns the total tuple count shipped."""
        if self._invariants is None:
            return 0
        clock = self.now if clock is None else clock
        total = 0
        for process in list(self.processes.values()):
            total += process.publish_state(clock=clock)
        return total

    @property
    def monitor(self):
        """The telemetry/invariant monitor process, if either plane is
        enabled."""
        cfg = self._telemetry or self._invariants
        return self.processes.get(cfg["monitor"]) if cfg else None

    def telemetry_dashboard(self) -> str:
        """The monitor node's live view: alarms, cluster rollups,
        per-node reporting status (deterministic text)."""
        monitor = self.monitor
        if monitor is None:
            return "(telemetry disabled — call enable_telemetry first)"
        from ..telemetry.export import render_telemetry_dashboard

        return render_telemetry_dashboard(monitor, now_ms=self.now)

    def export_telemetry_jsonl(self, path):
        monitor = self.monitor
        if monitor is None:
            raise RuntimeError("telemetry disabled — call enable_telemetry")
        from ..telemetry.export import write_telemetry_jsonl

        return write_telemetry_jsonl(monitor, path, now_ms=self.now)


__all__ = ["BaseCluster"]
