"""Backend-agnostic cluster: processes + observability over a Transport.

:class:`BaseCluster` owns everything that is *not* substrate-specific —
the process registry, crash/restart/partition controls, the metrics
aggregator, the tracer and cross-node provenance — and talks to the
substrate only through the :class:`~repro.transport.base.Transport`
contract.  The two concrete clusters are
:class:`repro.sim.cluster.Cluster` (deterministic discrete-event time)
and :class:`repro.transport.asyncio_backend.AsyncCluster` (real
concurrency); BOOM-FS, BOOM-MR, Paxos and the Hadoop baseline run
unmodified on either.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

from ..metrics import ClusterMetrics, MetricsRegistry, Tracer
from ..provenance.why import ClusterProvenance
from .base import Address, TimerHandle, Transport
from .envelope import Envelope

if TYPE_CHECKING:
    from ..sim.node import Process


class BaseCluster:
    """A cluster of processes over one pluggable transport."""

    #: Stamped into benchmark reports so A/E trajectories stay comparable.
    backend = "base"

    def __init__(self, transport: Transport, batching: bool = True):
        # Observability: one cluster-wide metrics aggregator (every node's
        # registry is adopted into it on attach) and one tracer driven by
        # the transport clock (see docs/OBSERVABILITY.md).
        self.metrics = ClusterMetrics()
        self.tracer = Tracer(clock=lambda: self.transport.now)
        # Cross-node provenance: nodes built with provenance=True register
        # their derivation ledgers here, and Cluster.why() stitches
        # derivation DAGs across them (docs/PROVENANCE.md).
        self.provenance = ClusterProvenance(tracer=self.tracer)
        self.transport = transport
        transport.tracer = self.tracer
        transport.metrics = self.metrics.adopt(MetricsRegistry("transport"))
        #: Flush-on-fixpoint batching; False degrades to one envelope per
        #: delta (the E4 ablation).
        self.batching = batching
        self.processes: dict[Address, "Process"] = {}

    # -- membership -----------------------------------------------------------

    def add(self, process: "Process") -> "Process":
        if process.address in self.processes:
            raise ValueError(f"duplicate address {process.address}")
        self.processes[process.address] = process
        process.attach(self)
        self.transport.register(
            process.address, lambda env: self._deliver_envelope(process, env)
        )
        with process.sending():
            process.start()
        return process

    def get(self, address: Address) -> "Process":
        return self.processes[address]

    def addresses(self) -> list[Address]:
        return list(self.processes)

    # -- envelope plumbing ----------------------------------------------------

    def _deliver_envelope(self, process: "Process", env: Envelope) -> None:
        """Unpack an arriving envelope into per-delta handler calls, each
        under its own reopened trace context; sends the handlers make are
        batched and flushed once the whole envelope is consumed."""
        tracer = self.tracer
        with process.sending():
            if tracer is None:
                for relation, row, _mid in env.items():
                    process.handle_message(relation, row)
                return
            for relation, row, mid in env.items():
                # The handler runs under the delivered context (child
                # spans of the sender's), never under whatever happened
                # to be ambient.
                ctx = tracer.on_deliver(mid, process.address, relation)
                with tracer.activate(ctx):
                    process.handle_message(relation, row)

    # -- failure injection ----------------------------------------------------

    def crash(self, address: Address) -> None:
        """Fail-stop the node: it stops receiving, sending and ticking.
        All volatile state is lost, including unflushed send buffers."""
        process = self.processes[address]
        if process.crashed:
            return
        process.crashed = True
        process.on_crash()
        process.discard_unsent()
        self.transport.unregister(address)

    def restart(self, address: Address) -> None:
        """Bring a crashed node back with empty volatile state."""
        process = self.processes[address]
        if not process.crashed:
            return
        process.crashed = False
        reset = getattr(process, "reset_for_restart", None)
        if reset is not None:
            reset()
        self.transport.register(
            address, lambda env: self._deliver_envelope(process, env)
        )
        with process.sending():
            process.start()
        on_restart = getattr(process, "on_restart", None)
        if on_restart is not None:
            on_restart()

    def crash_at(self, time_ms: int, address: Address) -> None:
        self.schedule_at(time_ms, lambda: self.crash(address))

    def restart_at(self, time_ms: int, address: Address) -> None:
        self.schedule_at(time_ms, lambda: self.restart(address))

    def partition(self, *groups: Iterable[Address]) -> None:
        self.transport.partition(*[list(g) for g in groups])

    def heal(self) -> None:
        self.transport.heal()

    def is_up(self, address: Address) -> bool:
        process = self.processes.get(address)
        return process is not None and not process.crashed

    # -- time -----------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.transport.now

    def schedule(
        self, delay_ms: int, action: Callable[[], None]
    ) -> TimerHandle:
        return self.transport.call_later(delay_ms, action)

    def schedule_at(
        self, time_ms: int, action: Callable[[], None]
    ) -> TimerHandle:
        return self.transport.call_later(max(0, time_ms - self.now), action)

    # -- running (backend-specific) -------------------------------------------

    def run_for(self, duration_ms: int) -> None:
        raise NotImplementedError

    def run_until(
        self, condition: Callable[[], bool], max_time_ms: int
    ) -> bool:
        """Run until ``condition()`` holds; True when it was reached."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Gracefully drain and release the substrate (no-op for
        backends without background machinery)."""

    # -- observability --------------------------------------------------------

    @property
    def network(self) -> Transport:
        """Legacy alias from the pre-transport layering (stats, partition
        checks); prefer :attr:`transport` in new code."""
        return self.transport

    def metrics_snapshot(self) -> dict:
        return self.metrics.snapshot(now_ms=self.now)

    def dashboard(self) -> str:
        """Text snapshot of cluster-wide metrics (operator view)."""
        return self.metrics.render_dashboard(now_ms=self.now)

    def export_metrics_jsonl(self, path):
        return self.metrics.export_jsonl(path, now_ms=self.now)

    def export_traces_jsonl(self, path) -> None:
        self.tracer.export_jsonl(path)

    def why(self, node: Address, relation: str, row, fmt: str = "text"):
        """Cross-node derivation DAG of ``(relation, row)`` as recorded by
        ``node``'s ledger, stitched through every registered ledger and
        the tracer.  Requires the node to run with ``provenance=True``."""
        return self.provenance.why(node, relation, row, fmt=fmt)


__all__ = ["BaseCluster"]
