"""Deterministic simulated transport (the discrete-event backend).

The pre-refactor ``repro.sim.network.Network`` with the transport
contract factored out: envelopes instead of one-tuple messages, but the
same model of what matters to the paper's experiments:

* configurable per-envelope latency (base + seeded jitter + size/bandwidth),
* optional envelope loss,
* network partitions (checked at send *and* delivery time, so an
  envelope in flight when a link breaks is lost, and one in flight when
  a partition heals arrives),
* per-link FIFO ordering (TCP-like), preserved even under jitter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .base import Address, TimerHandle, Transport
from .envelope import Envelope

if TYPE_CHECKING:
    from ..sim.simulator import Simulator


@dataclass
class LatencyModel:
    """Per-envelope latency = base + U(0, jitter) + size/bandwidth, in ms.

    ``kb_per_ms`` models link bandwidth for bulk transfers (chunk data);
    zero disables the size-dependent term (control messages dominate).
    Batching amortizes the base+jitter terms across every delta in the
    envelope — the win the E4 ablation quantifies.
    """

    base_ms: int = 1
    jitter_ms: int = 2
    kb_per_ms: float = 0.0

    def sample(self, rng: random.Random, size_bytes: int = 0) -> int:
        latency = self.base_ms
        if self.jitter_ms > 0:
            latency += rng.randrange(self.jitter_ms + 1)
        if self.kb_per_ms > 0 and size_bytes > 0:
            latency += int(size_bytes / 1024 / self.kb_per_ms)
        return latency


class SimTransport(Transport):
    """Routes envelopes between registered callbacks with simulated delay."""

    backend = "sim"

    def __init__(
        self,
        sim: "Simulator",
        latency: Optional[LatencyModel] = None,
        loss_rate: float = 0.0,
        seed: int = 0,
    ):
        super().__init__()
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self.rng = random.Random(seed)
        self._last_delivery: dict[tuple[Address, Address], int] = {}

    # -- clock & timers -------------------------------------------------------

    @property
    def now(self) -> int:
        return self.sim.now

    def call_later(
        self, delay_ms: int, action: Callable[[], None]
    ) -> TimerHandle:
        return self.sim.schedule(delay_ms, action)

    # -- sending --------------------------------------------------------------

    def send(self, env: Envelope) -> None:
        """Queue an envelope for delivery; may be dropped by loss/partition."""
        self._account_sent(env)
        if not self.can_reach(env.src, env.dst):
            self._account_dropped(env, "partition")
            return
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            self._account_dropped(env, "loss")
            return
        if self.same_machine(env.src, env.dst):
            # Local transfer: loopback/disk, no wire-bandwidth term.
            arrival = self.sim.now + self.latency.base_ms
        else:
            arrival = self.sim.now + self.latency.sample(
                self.rng, size_bytes=env.size_bytes
            )
            self.stats.remote_bytes += env.size_bytes
        # Per-link FIFO: never deliver before an earlier envelope on the link.
        link = (env.src, env.dst)
        arrival = max(arrival, self._last_delivery.get(link, 0))
        self._last_delivery[link] = arrival
        self.sim.schedule_at(arrival, lambda: self._deliver(env))

    def _deliver(self, env: Envelope) -> None:
        # Partition / crash checks happen again at delivery time: an
        # envelope in flight when the link breaks (or the destination
        # dies) is lost; one in flight when a partition heals arrives.
        if not self.can_reach(env.src, env.dst):
            self._account_dropped(env, "partition")
            return
        deliver = self._deliver_fns.get(env.dst)
        if deliver is None:
            self._account_dropped(env, "dead")
            return
        self._account_delivered(env)
        deliver(env)
