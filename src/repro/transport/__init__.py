"""Pluggable transport layer: one Node/Network contract, many substrates.

The contract (:class:`Transport`, :class:`Envelope`, :class:`TimerHandle`)
lives in :mod:`repro.transport.base` / :mod:`repro.transport.envelope`;
the two backends are :class:`SimTransport` (deterministic discrete-event
time, used by :class:`repro.sim.cluster.Cluster`) and
:class:`LocalAsyncTransport` (real asyncio concurrency over queue or TCP
endpoints, used by :class:`AsyncCluster`).  See docs/ARCHITECTURE.md for
the layer diagram.
"""

from .base import (
    Address,
    DeliverFn,
    Delta,
    NetworkStats,
    TimerHandle,
    Transport,
    TransportStats,
)
from .base_cluster import BaseCluster
from .envelope import Envelope, Outbox, estimate_delta_size, estimate_row_size
from .sim_transport import LatencyModel, SimTransport
from .asyncio_backend import AsyncCluster, LocalAsyncTransport

__all__ = [
    "Address",
    "AsyncCluster",
    "BaseCluster",
    "DeliverFn",
    "Delta",
    "Envelope",
    "LatencyModel",
    "LocalAsyncTransport",
    "NetworkStats",
    "Outbox",
    "SimTransport",
    "TimerHandle",
    "Transport",
    "TransportStats",
    "estimate_delta_size",
    "estimate_row_size",
]
