"""Causal cross-node tracing over the simulated cluster.

The Overlog rewrite in :mod:`repro.monitoring` observes *rules*; this
module observes *requests*.  A trace is started where a request enters the
system (a client), carried on every message the request causes, and
reassembled into a span tree afterwards — the declarative-systems analogue
of distributed tracing (Dapper-style), but exact, deterministic and free
of clock skew because the whole cluster shares one virtual clock.

Propagation model
-----------------

Handlers run single-threaded on either backend, so causality is dynamic
scope:

* ``tracer.current`` holds the active span references while a handler (or
  an Overlog timestep's effect phase) runs;
* :meth:`repro.sim.node.Process.send` captures ``current`` at buffer time
  (``on_send`` mints a message id that rides the
  :class:`~repro.transport.envelope.Envelope` next to its delta, so
  batching never blurs which span caused which tuple) and the cluster
  restores it (as freshly minted *child* spans) around each delivery;
* :class:`~repro.overlog.runtime.OverlogRuntime` tags inbox tuples with
  the context they arrived under; a timestep executes under the union of
  its inbox tuples' contexts, so tuples derived by rules — including
  ``@next`` deferrals and remote sends — inherit the traces that caused
  them.

Timer firings and scheduler callbacks carry no context, which is the
honest answer: a heartbeat is not caused by any one request.  When a step
mixes traced and untraced inputs, its outputs are attributed to every
trace present — an over-approximation (join-based provenance would be
exact), noted in docs/OBSERVABILITY.md.

Everything — trace ids, span ids, message ids, timestamps — comes from
counters and the virtual clock, so two runs with the same seed export
byte-identical JSONL.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

Context = tuple["SpanRef", ...]


@dataclass(frozen=True)
class SpanRef:
    """A (trace, span) coordinate used for propagation."""

    trace_id: str
    span_id: int


@dataclass
class Span:
    """A reconstructed span: one causal visit to one node."""

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    node: str
    name: str
    start_ms: int
    events: list[dict] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    def walk(self) -> Iterable["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Mints trace/span ids, records events, reconstructs span trees."""

    def __init__(self, clock: Optional[Callable[[], int]] = None):
        self._clock = clock if clock is not None else (lambda: 0)
        self.events: list[dict] = []
        self.current: Context = ()
        self._trace_n = 0
        self._msg_n = 0
        self._span_n: dict[str, int] = {}
        self._msg_ctx: dict[int, Context] = {}
        # Observers of the event stream (e.g. the flight recorder's
        # bounded ring, docs/OBSERVABILITY.md); each is called with every
        # event dict right after it is appended.
        self.listeners: list[Callable[[dict], None]] = []

    def add_listener(self, listener: Callable[[dict], None]) -> None:
        self.listeners.append(listener)

    def _record(self, event: dict) -> None:
        self.events.append(event)
        for listener in self.listeners:
            listener(event)

    @property
    def now(self) -> int:
        return self._clock()

    # -- context management ---------------------------------------------------

    @contextmanager
    def activate(self, ctx: Iterable[SpanRef]):
        """Run a block under the given span context (dynamic scope)."""
        previous = self.current
        self.current = tuple(ctx)
        try:
            yield
        finally:
            self.current = previous

    def start_trace(self, name: str, node: str = "client") -> SpanRef:
        """Open a new trace; returns its root span reference."""
        self._trace_n += 1
        trace_id = f"t{self._trace_n}"
        self._span_n[trace_id] = 0
        self._record(
            {
                "kind": "begin",
                "trace": trace_id,
                "span": 0,
                "parent": None,
                "node": node,
                "name": name,
                "ms": self.now,
            }
        )
        return SpanRef(trace_id, 0)

    @contextmanager
    def trace(self, name: str, node: str = "client"):
        """``with tracer.trace("mkdir /x") as ref: <synchronous sends>``.

        Only the sends issued *directly* inside the block are stamped;
        anything the simulator later delivers propagates on its own.
        """
        ref = self.start_trace(name, node=node)
        with self.activate((ref,)):
            yield ref

    # -- hooks called by the network / runtimes -------------------------------

    def on_send(self, src: str, dst: str, relation: str) -> Optional[int]:
        """Record a message send under the active context.  Returns a
        message id to correlate the delivery, or None when untraced."""
        if not self.current:
            return None
        self._msg_n += 1
        mid = self._msg_n
        self._msg_ctx[mid] = self.current
        now = self.now
        for ref in self.current:
            self._record(
                {
                    "kind": "send",
                    "trace": ref.trace_id,
                    "span": ref.span_id,
                    "msg": mid,
                    "src": src,
                    "dst": dst,
                    "relation": relation,
                    "ms": now,
                }
            )
        return mid

    def on_xmit(self, mid: Optional[int]) -> None:
        """Record that a traced delta's envelope left its outbox and was
        handed to the transport.  The gap between a delta's ``send``
        (buffer time) and its ``xmit`` is outbox batching wait — one of
        the categories the latency accounting layer attributes
        (docs/OBSERVABILITY.md)."""
        if mid is None:
            return
        now = self.now
        for ref in self._msg_ctx.get(mid, ()):
            self._record(
                {
                    "kind": "xmit",
                    "trace": ref.trace_id,
                    "span": ref.span_id,
                    "msg": mid,
                    "ms": now,
                }
            )

    def on_stall(self, mid: Optional[int], phase: str) -> None:
        """Record a backpressure stall boundary (``phase`` is ``begin``
        or ``end``) for a traced envelope blocked on a full bounded
        queue (asyncio backend)."""
        if mid is None:
            return
        now = self.now
        for ref in self._msg_ctx.get(mid, ()):
            self._record(
                {
                    "kind": f"stall_{phase}",
                    "trace": ref.trace_id,
                    "span": ref.span_id,
                    "msg": mid,
                    "ms": now,
                }
            )

    def on_drop(self, mid: Optional[int], reason: str) -> None:
        """Record that a traced message was lost (loss/partition/dead)."""
        if mid is None:
            return
        now = self.now
        for ref in self._msg_ctx.pop(mid, ()):
            self._record(
                {
                    "kind": "drop",
                    "trace": ref.trace_id,
                    "span": ref.span_id,
                    "msg": mid,
                    "reason": reason,
                    "ms": now,
                }
            )

    def on_deliver(self, mid: Optional[int], node: str, relation: str) -> Context:
        """Open child spans for a delivered message; returns the context
        the destination's handler must run under."""
        if mid is None:
            return ()
        parents = self._msg_ctx.pop(mid, ())
        now = self.now
        ctx: list[SpanRef] = []
        for parent in parents:
            self._span_n[parent.trace_id] += 1
            span_id = self._span_n[parent.trace_id]
            self._record(
                {
                    "kind": "recv",
                    "trace": parent.trace_id,
                    "span": span_id,
                    "parent": parent.span_id,
                    "msg": mid,
                    "node": node,
                    "relation": relation,
                    "ms": now,
                }
            )
            ctx.append(SpanRef(parent.trace_id, span_id))
        return tuple(ctx)

    def annotate(self, ctx: Iterable[SpanRef], kind: str, **fields: Any) -> None:
        """Attach an in-span event (e.g. a fixpoint summary) to each span."""
        now = self.now
        for ref in ctx:
            event = {
                "kind": kind,
                "trace": ref.trace_id,
                "span": ref.span_id,
                "ms": now,
            }
            event.update(fields)
            self._record(event)

    # -- reconstruction -------------------------------------------------------

    def trace_ids(self) -> list[str]:
        return [e["trace"] for e in self.events if e["kind"] == "begin"]

    def span_tree(self, trace_id: str) -> Optional[Span]:
        """Rebuild the span tree of one trace from the flat event log."""
        spans: dict[int, Span] = {}
        root: Optional[Span] = None
        for event in self.events:
            if event["trace"] != trace_id:
                continue
            kind = event["kind"]
            if kind == "begin":
                root = spans[0] = Span(
                    trace_id, 0, None, event["node"], event["name"], event["ms"]
                )
            elif kind == "recv":
                span = Span(
                    trace_id,
                    event["span"],
                    event["parent"],
                    event["node"],
                    event["relation"],
                    event["ms"],
                )
                spans[event["span"]] = span
                parent = spans.get(event["parent"])
                if parent is not None:
                    parent.children.append(span)
            else:
                span = spans.get(event["span"])
                if span is not None:
                    span.events.append(event)
        return root

    def span_node(self, ref: SpanRef) -> Optional[str]:
        """The node a span ran on (from its begin/recv event), or None
        for an unknown span."""
        for event in self.events:
            if (
                event["kind"] in ("begin", "recv")
                and event["trace"] == ref.trace_id
                and event["span"] == ref.span_id
            ):
                return event["node"]
        return None

    def span_parent(self, ref: SpanRef) -> Optional[SpanRef]:
        """The parent span of ``ref`` (the hop that caused it), or None
        for a trace root / unknown span."""
        for event in self.events:
            if (
                event["trace"] == ref.trace_id
                and event["span"] == ref.span_id
            ):
                if event["kind"] == "recv":
                    parent = event["parent"]
                    if parent is not None:
                        return SpanRef(ref.trace_id, parent)
                    return None
                if event["kind"] == "begin":
                    return None
        return None

    def origin_node(self, ref: SpanRef) -> Optional[str]:
        """The node that *caused* span ``ref`` — its parent span's node,
        falling back to the span's own node for trace roots.  The
        provenance layer uses this to name the sender of an inbox tuple
        when the sender keeps no derivation ledger (imperative clients)."""
        parent = self.span_parent(ref)
        if parent is not None:
            return self.span_node(parent)
        return self.span_node(ref)

    def nodes_crossed(self, trace_id: str) -> set[str]:
        root = self.span_tree(trace_id)
        if root is None:
            return set()
        return {span.node for span in root.walk()}

    def render_tree(self, trace_id: str) -> str:
        """ASCII rendering of a trace's span tree."""
        root = self.span_tree(trace_id)
        if root is None:
            return f"(no such trace {trace_id})"
        lines: list[str] = []

        def emit(span: Span, depth: int) -> None:
            label = span.name if depth == 0 else span.name
            notes = "".join(
                f" [{e['kind']}:{e.get('relation', e.get('derivations', ''))}]"
                for e in span.events
                if e["kind"] in ("step", "drop")
            )
            lines.append(
                f"{'  ' * depth}+- {span.start_ms:>6} ms  {span.node:<12} "
                f"{label}{notes}"
            )
            for child in span.children:
                emit(child, depth + 1)

        emit(root, 0)
        return "\n".join(lines)

    # -- export ---------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per event, key-sorted: deterministic runs yield
        byte-identical exports."""
        return "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in self.events
        )

    def export_jsonl(self, path) -> None:
        from .export import write_text

        write_text(path, self.to_jsonl())
