"""Exporters: deterministic JSONL event logs and a text dashboard.

Two machine formats, one human format:

* ``metrics_jsonl(cluster_metrics)`` — one JSON line per node snapshot
  plus one cluster-aggregate line (key-sorted; byte-stable across runs
  with the same seed);
* ``Tracer.to_jsonl()`` (in :mod:`repro.metrics.trace`) — one line per
  trace event;
* ``render_dashboard(cluster_metrics)`` — the operator's view: per-node
  step/derivation counts, hottest rules, largest relations;
* ``hot_rules_json`` / ``render_hot_rules`` — the plan profiler's
  hot-rules report (:mod:`repro.provenance.profiler`) as key-sorted JSON
  and as text.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from .registry import ClusterMetrics


def write_text(path, text: str) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def metrics_jsonl(metrics: ClusterMetrics, now_ms: Optional[int] = None) -> str:
    """Node snapshots plus the cluster aggregate as JSON lines."""
    records = []
    for scope in sorted(metrics.registries):
        snap = metrics.registries[scope].snapshot()
        snap["record"] = "node"
        snap["now_ms"] = now_ms
        records.append(snap)
    records.append(
        {
            "record": "cluster",
            "now_ms": now_ms,
            "counters": metrics.aggregate_counters(),
        }
    )
    return "".join(
        json.dumps(r, sort_keys=True, separators=(",", ":")) + "\n"
        for r in records
    )


def hot_rules_json(report: dict) -> str:
    """A profiler hot-rules report (``PlanProfiler.hot_rules()``) as
    key-sorted JSON, for artifact upload."""
    return json.dumps(report, sort_keys=True, indent=2)


def render_hot_rules(report: dict) -> str:
    """Text rendering of a profiler hot-rules report: rules ranked by
    estimated time, each broken down per plan and per step.  Step
    indexes match ``explain()`` output for the same rule."""
    lines = [
        "== hot rules (sampled 1/"
        f"{report['sample_every']} plan executions, scaled estimates) =="
    ]
    if not report["rules"]:
        lines.append("(no plan executions sampled)")
        return "\n".join(lines)
    for entry in report["rules"]:
        lines.append(
            f"{entry['rule']:<24} est {entry['est_ms']:>9.3f} ms   "
            f"execs {entry['execs']:>7}  sampled {entry['sampled']}"
        )
        for plan in entry["plans"]:
            if not plan["sampled"]:
                continue
            lines.append(
                f"  [{plan['tag']}] est {plan['est_ms']:.3f} ms over "
                f"{plan['execs']} execs, {plan['rows_out']} sampled rows out"
            )
            for step in plan["steps"]:
                lines.append(
                    f"    {step['step']}. {step['describe']:<44} "
                    f"{step['time_ms']:>8.3f} ms  "
                    f"envs-out {step['envs_out']}"
                )
    return "\n".join(lines)


def _top(items: dict, n: int = 5) -> list[tuple[str, int]]:
    return sorted(items.items(), key=lambda kv: (-kv[1], kv[0]))[:n]


def render_dashboard(
    metrics: ClusterMetrics, now_ms: Optional[int] = None
) -> str:
    """A plain-text snapshot of the whole cluster's health."""
    lines = [f"== cluster metrics @ {now_ms} ms =="]
    cluster = metrics.aggregate_counters()
    if cluster:
        lines.append("cluster totals:")
        for name, value in cluster.items():
            lines.append(f"  {name:<36} {value}")
    for scope in sorted(metrics.registries):
        snap = metrics.registries[scope].snapshot()
        lines.append(f"-- node {scope} --")
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<36} {value}")
        rows = {
            name[len("rows."):]: value
            for name, value in snap["gauges"].items()
            if name.startswith("rows.") and value
        }
        if rows:
            largest = ", ".join(
                f"{rel}={n}" for rel, n in _top(rows, 6)
            )
            lines.append(f"  largest relations: {largest}")
        fires = snap.get("rule_fires")
        if fires:
            hottest = ", ".join(f"{r}={n}" for r, n in _top(fires, 6))
            lines.append(f"  hottest rules: {hottest}")
        hist = snap["histograms"].get("overlog.step_derivations")
        if hist and hist["count"]:
            lines.append(
                f"  derivations/step: mean={hist['mean']} over "
                f"{hist['count']} steps"
            )
    return "\n".join(lines)
