"""Virtual-time observability for the Overlog cluster.

Three pillars (see docs/OBSERVABILITY.md):

* **registry** — per-node counters/gauges/histograms/time-windows, always
  on, aggregated cluster-wide (:class:`ClusterMetrics`);
* **trace** — causal request tracing across simulated nodes, reconstructed
  into span trees (:class:`Tracer`);
* **export** — deterministic JSONL logs plus a text dashboard.

The :mod:`repro.monitoring` package instruments *programs* (a rule
rewrite, the paper's third revision); this package instruments the
*runtime underneath the rules* — the two are compared by benchmark E8.
"""

from .export import metrics_jsonl, render_dashboard, write_text
from .registry import (
    DEFAULT_BUCKETS,
    ClusterMetrics,
    Counter,
    Distinct,
    Gauge,
    Histogram,
    MetricsRegistry,
    NodeMetrics,
    Percentile,
    TimeWindow,
)
from .trace import Span, SpanRef, Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "ClusterMetrics",
    "Counter",
    "Distinct",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NodeMetrics",
    "Percentile",
    "Span",
    "SpanRef",
    "TimeWindow",
    "Tracer",
    "metrics_jsonl",
    "render_dashboard",
    "write_text",
]
