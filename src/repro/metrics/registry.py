"""Metric primitives and registries.

The observability layer mirrors the simulator's design constraints: all
time is *virtual* (integer milliseconds from the discrete-event clock) and
everything must be deterministic, so snapshots and exports of the same run
are byte-identical.  Metrics are plain Python objects — no background
threads, no wall-clock reads — cheap enough to stay always-on (the E4/E8
benchmarks measure the cost).

Three scopes:

* :class:`MetricsRegistry` — one per node (one per Overlog runtime or
  imperative process); named counters/gauges/histograms/windows plus the
  sketch-backed :class:`Percentile` and :class:`Distinct` primitives
  whose payloads the telemetry plane ships cluster-wide
  (docs/TELEMETRY.md).
* :class:`NodeMetrics` — the Overlog runtime's adapter: records one
  timestep's evaluator effects (derivation deltas, per-stratum semi-naive
  iteration counts, relation cardinalities) into its registry and surfaces
  the evaluator's per-rule firing counts at snapshot time.
* :class:`ClusterMetrics` — the cluster-wide aggregator: holds every
  node's registry, merges counters across nodes, and renders the text
  dashboard / JSONL export (see :mod:`repro.metrics.export`).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Optional

from ..sketches import HyperLogLog, TDigest

DEFAULT_BUCKETS = (0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (e.g. a relation's current cardinality)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value


class Histogram:
    """Fixed-bound bucketed distribution (counts per upper bound).

    Bounds are inclusive upper edges; observations above the last bound
    land in the overflow bucket.  The fixed buckets are kept for export
    compatibility (dashboards and historical JSONL diff cleanly), but
    quantile queries go through an internal t-digest — linear-scaled
    buckets are a poor fit for latency tails, where p999 may sit three
    orders of magnitude past the median.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "digest")

    def __init__(self, bounds: tuple = DEFAULT_BUCKETS):
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.digest = TDigest()

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.digest.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 1], answered by the t-digest
        (bounded *rank* error at any scale, unlike the fixed buckets)."""
        return self.digest.quantile(q)

    def percentile(self, p: float) -> float:
        """Value at percentile ``p`` in [0, 100]."""
        return self.digest.percentile(p)

    def payload(self) -> tuple:
        """The digest as a literal-safe tuple (telemetry wire form)."""
        return self.digest.to_payload()

    def snapshot(self) -> dict:
        buckets = {
            f"le_{bound}": n
            for bound, n in zip(self.bounds, self.bucket_counts)
            if n
        }
        if self.bucket_counts[-1]:
            buckets["overflow"] = self.bucket_counts[-1]
        snap = {
            "count": self.count,
            "sum": self.total,
            "mean": round(self.mean, 3),
            "buckets": buckets,
        }
        if self.count:
            snap["p50"] = round(self.quantile(0.50), 3)
            snap["p99"] = round(self.quantile(0.99), 3)
        return snap


class Percentile:
    """A quantile sketch metric: observe values, query percentiles.

    Backed by a mergeable :class:`~repro.sketches.tdigest.TDigest`, so
    the telemetry plane can ship it as a tuple payload and the monitor
    node can fold per-node distributions into cluster-wide rollups with
    the ``percentile<>`` Overlog aggregate (docs/TELEMETRY.md)."""

    __slots__ = ("digest",)

    def __init__(self, compression: int = 200):
        self.digest = TDigest(compression)

    def observe(self, value: float) -> None:
        self.digest.add(value)

    @property
    def count(self) -> float:
        return self.digest.count

    def quantile(self, q: float) -> float:
        return self.digest.quantile(q)

    def percentile(self, p: float) -> float:
        return self.digest.percentile(p)

    def payload(self) -> tuple:
        """Literal-safe wire form (merged cluster-wide by the monitor)."""
        return self.digest.to_payload()

    def snapshot(self) -> dict:
        if self.digest.count == 0:
            return {"count": 0}
        return {
            "count": int(self.digest.count),
            "p50": round(self.quantile(0.50), 3),
            "p99": round(self.quantile(0.99), 3),
            "p999": round(self.quantile(0.999), 3),
        }


class Distinct:
    """An approximate distinct counter (HyperLogLog-backed).

    Memory stays O(2^precision) however many values are added; the
    payload merges register-wise across nodes, so cluster-wide distinct
    counts come from the ``count_distinct_approx<>`` Overlog aggregate
    without ever shipping the values themselves."""

    __slots__ = ("hll",)

    def __init__(self, precision: int = 12):
        self.hll = HyperLogLog(precision)

    def add(self, value: Any) -> None:
        self.hll.add(value)

    def estimate(self) -> int:
        return self.hll.estimate()

    def payload(self) -> tuple:
        """Literal-safe wire form (merged cluster-wide by the monitor)."""
        return self.hll.to_payload()

    def snapshot(self) -> dict:
        return {"estimate": self.estimate()}


class TimeWindow:
    """A counter bucketed by virtual time (rates over the simulated clock).

    ``add(now, n)`` accumulates into the ``now // width_ms`` bucket; only
    the most recent ``keep`` buckets are retained, bounding memory on long
    runs while keeping recent-rate queries exact.
    """

    __slots__ = ("width_ms", "keep", "buckets")

    def __init__(self, width_ms: int = 1000, keep: int = 64):
        if width_ms <= 0:
            raise ValueError("window width must be positive")
        self.width_ms = width_ms
        self.keep = keep
        self.buckets: dict[int, int] = {}

    def add(self, now_ms: int, n: int = 1) -> None:
        bucket = now_ms // self.width_ms
        self.buckets[bucket] = self.buckets.get(bucket, 0) + n
        if len(self.buckets) > self.keep:
            for stale in sorted(self.buckets)[: len(self.buckets) - self.keep]:
                del self.buckets[stale]

    def value_at(self, now_ms: int) -> int:
        return self.buckets.get(now_ms // self.width_ms, 0)

    def rate_per_s(self, now_ms: int) -> float:
        """Events/second over the most recent *complete* window."""
        prev = now_ms // self.width_ms - 1
        return self.buckets.get(prev, 0) * 1000.0 / self.width_ms

    def snapshot(self) -> dict:
        return {
            "width_ms": self.width_ms,
            "buckets": {
                str(b * self.width_ms): n
                for b, n in sorted(self.buckets.items())
            },
        }


class MetricsRegistry:
    """Named metrics for one scope (one node address, usually).

    Metric constructors are get-or-create so call sites never need to
    pre-register.  ``add_collector`` lets an owner (e.g.
    :class:`NodeMetrics`) contribute computed fields to snapshots lazily,
    keeping the per-step hot path free of snapshot work.
    """

    def __init__(self, scope: str):
        self.scope = scope
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.percentiles: dict[str, Percentile] = {}
        self.distincts: dict[str, Distinct] = {}
        self.windows: dict[str, TimeWindow] = {}
        self._collectors: list[Callable[[dict], None]] = []

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(
        self, name: str, bounds: tuple = DEFAULT_BUCKETS
    ) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(bounds)
        return h

    def percentile(self, name: str, compression: int = 200) -> Percentile:
        p = self.percentiles.get(name)
        if p is None:
            p = self.percentiles[name] = Percentile(compression)
        return p

    def distinct(self, name: str, precision: int = 12) -> Distinct:
        d = self.distincts.get(name)
        if d is None:
            d = self.distincts[name] = Distinct(precision)
        return d

    def window(
        self, name: str, width_ms: int = 1000, keep: int = 64
    ) -> TimeWindow:
        w = self.windows.get(name)
        if w is None:
            w = self.windows[name] = TimeWindow(width_ms, keep)
        return w

    def add_collector(self, collect: Callable[[dict], None]) -> None:
        self._collectors.append(collect)

    def snapshot(self) -> dict:
        snap: dict[str, Any] = {
            "scope": self.scope,
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.snapshot()
                for name, h in sorted(self.histograms.items())
            },
            "percentiles": {
                name: p.snapshot()
                for name, p in sorted(self.percentiles.items())
            },
            "distincts": {
                name: d.snapshot()
                for name, d in sorted(self.distincts.items())
            },
            "windows": {
                name: w.snapshot() for name, w in sorted(self.windows.items())
            },
        }
        for collect in self._collectors:
            collect(snap)
        return snap


class NodeMetrics:
    """The Overlog runtime's always-on instrumentation sink.

    One instance belongs to one :class:`~repro.overlog.runtime.OverlogRuntime`.
    ``record_step`` is on the tick hot path, so it only bumps pre-resolved
    counter/histogram objects; anything that can be computed on demand —
    relation cardinalities, the evaluator's per-rule firing counts — is
    folded into snapshots lazily by a collector instead.
    """

    def __init__(self, scope: str, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry(scope)
        self.registry.add_collector(self._collect)
        self._evaluator = None
        self._steps = self.registry.counter("overlog.steps")
        self._derivations = self.registry.counter("overlog.derivations")
        self._iterations = self.registry.counter("overlog.fixpoint_iterations")
        self._step_hist = self.registry.histogram("overlog.step_derivations")
        self._rate = self.registry.window("overlog.derivations_window", 1000)
        self._row_gauges: dict[str, Gauge] = {}

    def bind_evaluator(self, evaluator) -> None:
        """Attach the evaluator whose catalog/rule counters we expose."""
        self._evaluator = evaluator
        self._row_gauges = {
            name: self.registry.gauge(f"rows.{name}")
            for name in evaluator.catalog.tables
        }

    def record_step(self, now_ms: int, result) -> None:
        """Fold one timestep's effects into the registry (hot path)."""
        self._steps.inc()
        dc = result.derivation_count
        self._derivations.inc(dc)
        self._step_hist.observe(dc)
        self._rate.add(now_ms, dc)
        for _stratum, iters in result.stratum_iterations:
            self._iterations.inc(iters)

    def _collect(self, snap: dict) -> None:
        evaluator = self._evaluator
        if evaluator is None:
            return
        # Relation cardinalities: point-in-time gauges, refreshed lazily
        # so the per-step path pays nothing for them.
        tables = evaluator.catalog.tables
        gauges = snap["gauges"]
        for name, gauge in self._row_gauges.items():
            gauge.set(len(tables[name]))
            gauges[f"rows.{name}"] = gauge.value
        snap["rule_fires"] = dict(sorted(evaluator.rule_fires.items()))
        snap["stratum_iterations"] = {
            str(s): n
            for s, n in sorted(evaluator.stratum_iteration_totals.items())
        }


class ClusterMetrics:
    """Cluster-wide aggregation over every node's registry."""

    def __init__(self) -> None:
        self.registries: dict[str, MetricsRegistry] = {}

    def node(self, scope: str) -> MetricsRegistry:
        """Get-or-create the registry for a node scope."""
        reg = self.registries.get(scope)
        if reg is None:
            reg = self.registries[scope] = MetricsRegistry(scope)
        return reg

    def adopt(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Register an externally created registry (e.g. a runtime's);
        replaces any previous registry with the same scope (restart)."""
        self.registries[registry.scope] = registry
        return registry

    def aggregate_counters(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for reg in self.registries.values():
            for name, counter in reg.counters.items():
                totals[name] = totals.get(name, 0) + counter.value
        return dict(sorted(totals.items()))

    def snapshot(self, now_ms: Optional[int] = None) -> dict:
        return {
            "now_ms": now_ms,
            "cluster": {"counters": self.aggregate_counters()},
            "nodes": {
                scope: reg.snapshot()
                for scope, reg in sorted(self.registries.items())
            },
        }

    # Rendering/export lives in repro.metrics.export; thin forwarding
    # methods keep the call sites short.

    def to_jsonl(self, now_ms: Optional[int] = None) -> str:
        from .export import metrics_jsonl

        return metrics_jsonl(self, now_ms)

    def export_jsonl(self, path, now_ms: Optional[int] = None):
        from .export import write_text

        return write_text(path, self.to_jsonl(now_ms))

    def render_dashboard(self, now_ms: Optional[int] = None) -> str:
        from .export import render_dashboard

        return render_dashboard(self, now_ms)
