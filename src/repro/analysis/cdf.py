"""Empirical CDFs and simple statistics for experiment reporting."""

from __future__ import annotations

from typing import Sequence


def empirical_cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """Return (value, cumulative fraction) pairs, sorted by value."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0..100) by nearest-rank."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(values)
    if p == 0:
        return ordered[0]
    rank = max(1, round(p / 100 * len(ordered) + 0.5) - 1)
    return ordered[min(rank, len(ordered) - 1)]


def summarize(values: Sequence[float]) -> dict[str, float]:
    """min / p25 / median / p75 / p95 / max / mean."""
    if not values:
        return {}
    return {
        "min": min(values),
        "p25": percentile(values, 25),
        "p50": percentile(values, 50),
        "p75": percentile(values, 75),
        "p95": percentile(values, 95),
        "max": max(values),
        "mean": sum(values) / len(values),
    }


def cdf_series(
    values: Sequence[float], points: int = 20
) -> list[tuple[float, float]]:
    """A downsampled CDF suitable for printing as a figure series."""
    full = empirical_cdf(values)
    if len(full) <= points:
        return full
    step = len(full) / points
    picked = [full[min(int(i * step), len(full) - 1)] for i in range(points)]
    if picked[-1] != full[-1]:
        picked.append(full[-1])
    return picked


def render_ascii_cdf(
    series: dict[str, Sequence[float]], width: int = 60, title: str = ""
) -> str:
    """Render one or more CDFs as an ASCII chart (fraction rows 0..1)."""
    lines = []
    if title:
        lines.append(title)
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        return title or ""
    vmax = max(all_values) or 1
    for name, values in series.items():
        cdf = empirical_cdf(values)
        lines.append(f"  {name}")
        for frac_target in (0.25, 0.5, 0.75, 0.9, 1.0):
            crossing = next((v for v, f in cdf if f >= frac_target), cdf[-1][0])
            bar = "#" * int(crossing / vmax * width)
            lines.append(f"    p{int(frac_target*100):3d} |{bar:<{width}}| {crossing:.0f}")
    return "\n".join(lines)
