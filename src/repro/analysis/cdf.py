"""Empirical CDFs and simple statistics for experiment reporting."""

from __future__ import annotations

import math
from typing import Sequence


def empirical_cdf(values: Sequence[float]) -> list[tuple[float, float]]:
    """Return (value, cumulative fraction) pairs, sorted by value."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def percentile(values: Sequence[float], p: float) -> float:
    """The p-th percentile (0..100) by true nearest-rank:
    ``rank = ceil(p/100 * n)``, the smallest value with at least ``p``
    percent of the sample at or below it.

    This matches the convention :meth:`repro.sketches.tdigest.TDigest`
    converges to (an earlier version used ``round(x + 0.5) - 1``, whose
    round-half-to-even behaviour overshot by one rank whenever
    ``p/100 * n`` landed on ``.5``).
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= p <= 100:
        raise ValueError("p must be in [0, 100]")
    ordered = sorted(values)
    if p == 0:
        return ordered[0]
    # The epsilon absorbs float noise in p/100*n (99.9% of 1000 samples
    # is 999.0000000000001, which must stay rank 999, not 1000).
    rank = math.ceil(p / 100 * len(ordered) - 1e-9)
    return ordered[min(rank, len(ordered)) - 1]


def summarize(values: Sequence[float]) -> dict[str, float]:
    """min / p25 / median / p75 / p95 / p99 / p999 / max / mean."""
    if not values:
        return {}
    return {
        "min": min(values),
        "p25": percentile(values, 25),
        "p50": percentile(values, 50),
        "p75": percentile(values, 75),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
        "p999": percentile(values, 99.9),
        "max": max(values),
        "mean": sum(values) / len(values),
    }


def cdf_series(
    values: Sequence[float], points: int = 20
) -> list[tuple[float, float]]:
    """A downsampled CDF suitable for printing as a figure series."""
    full = empirical_cdf(values)
    if len(full) <= points:
        return full
    step = len(full) / points
    picked = [full[min(int(i * step), len(full) - 1)] for i in range(points)]
    if picked[-1] != full[-1]:
        picked.append(full[-1])
    return picked


def render_ascii_cdf(
    series: dict[str, Sequence[float]], width: int = 60, title: str = ""
) -> str:
    """Render one or more CDFs as an ASCII chart (fraction rows 0..1).

    Degenerate series render sensibly: bars are anchored at the sample
    minimum (so all-equal or all-zero series show empty bars instead of
    a full-width wall) and negative values cannot produce negative bar
    widths — every bar is clamped to ``[0, width]``.
    """
    lines = []
    if title:
        lines.append(title)
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        return title or ""
    vmin = min(min(all_values), 0.0)
    span = max(all_values) - vmin or 1
    for name, values in series.items():
        if not values:
            continue
        cdf = empirical_cdf(values)
        lines.append(f"  {name}")
        for frac_target in (0.25, 0.5, 0.75, 0.9, 1.0):
            crossing = next((v for v, f in cdf if f >= frac_target), cdf[-1][0])
            filled = int((crossing - vmin) / span * width)
            bar = "#" * max(0, min(width, filled))
            lines.append(f"    p{int(frac_target*100):3d} |{bar:<{width}}| {crossing:.0f}")
    return "\n".join(lines)
