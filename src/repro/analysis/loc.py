"""Code-size accounting for the paper's headline table (E1).

The paper's Table 1 compares lines of Overlog + glue against Hadoop's
Java.  Here we measure this repository the same way: Overlog rule counts
and line counts per ``.olg`` program, and non-blank/non-comment Python
lines per package, so the declarative/imperative ratio is computed from
the artifacts themselves.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass
from pathlib import Path

from ..overlog import parse


@dataclass(frozen=True)
class OlgStats:
    path: str
    rules: int
    tables: int
    events: int
    lines: int  # non-blank, non-comment source lines


def count_olg(path: Path) -> OlgStats:
    source = path.read_text()
    program = parse(source)
    lines = 0
    in_block = False
    for raw in source.splitlines():
        line = raw.strip()
        if in_block:
            if "*/" in line:
                in_block = False
                line = line.split("*/", 1)[1].strip()
            else:
                continue
        while "/*" in line:
            before, _, rest = line.partition("/*")
            if "*/" in rest:
                line = before + rest.split("*/", 1)[1]
            else:
                line = before
                in_block = True
        line = line.split("//", 1)[0].strip()
        if line:
            lines += 1
    return OlgStats(
        path=str(path),
        rules=len(program.rules),
        tables=len(program.tables()),
        events=len(program.events()),
        lines=lines,
    )


def count_python_lines(path: Path) -> int:
    """Non-blank, non-comment, non-docstring logical source lines."""
    source = path.read_text()
    code_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenizeError:
        return sum(1 for l in source.splitlines() if l.strip())
    prev_significant = None
    for tok in tokens:
        if tok.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        if tok.type == tokenize.STRING and prev_significant in (None, ":", "\n"):
            # Module/class/function docstring (expression statement string).
            prev_significant = "\n"
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(line)
        prev_significant = tok.string if tok.string in (":",) else "x"
    return len(code_lines)


def count_package(root: Path) -> dict[str, int]:
    """Python LoC per file under a package directory."""
    return {
        str(p.relative_to(root)): count_python_lines(p)
        for p in sorted(root.rglob("*.py"))
    }


def repo_code_sizes(src_root: Path) -> dict[str, dict]:
    """The E1 inventory: per-component Overlog and Python line counts."""
    out: dict[str, dict] = {}
    for package in sorted(p for p in src_root.iterdir() if p.is_dir()):
        if package.name.startswith("_"):
            continue
        py = sum(count_package(package).values())
        olg = [count_olg(p) for p in sorted(package.rglob("*.olg"))]
        out[package.name] = {
            "python_loc": py,
            "olg_rules": sum(s.rules for s in olg),
            "olg_lines": sum(s.lines for s in olg),
            "olg_files": [s.path for s in olg],
        }
    return out
