"""Analysis toolkit: CDFs, code-size accounting, table rendering —
everything the benchmark harness uses to regenerate the paper's tables
and figures as text reports."""

from .cdf import cdf_series, empirical_cdf, percentile, render_ascii_cdf, summarize
from .loc import OlgStats, count_olg, count_package, count_python_lines, repo_code_sizes
from .tables import render_table

__all__ = [
    "OlgStats",
    "cdf_series",
    "count_olg",
    "count_package",
    "count_python_lines",
    "empirical_cdf",
    "percentile",
    "render_ascii_cdf",
    "render_table",
    "repo_code_sizes",
    "summarize",
]
