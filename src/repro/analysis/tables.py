"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table (numbers right-aligned)."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    out = []
    if title:
        out.append(title)
    sep = "-+-".join("-" * w for w in widths)
    for idx, row in enumerate(cells):
        aligned = []
        for i, cell in enumerate(row):
            value = rows[idx - 1][i] if idx > 0 else None
            if idx > 0 and isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                aligned.append(cell.rjust(widths[i]))
            else:
                aligned.append(cell.ljust(widths[i]))
        out.append(" | ".join(aligned))
        if idx == 0:
            out.append(sep)
    return "\n".join(out)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
