"""Workload generation: load drivers for latency and throughput studies."""

from .driver import DEFAULT_MIX, LoadDriver, OpRecord, run_driver

__all__ = ["DEFAULT_MIX", "LoadDriver", "OpRecord", "run_driver"]
