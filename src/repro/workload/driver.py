"""Open/closed-loop load driver for BOOM-FS metadata operations.

The E4 benchmark's generator is closed-loop only and measures
throughput; this driver exists for *latency* work: it drives a seeded
mix of NameNode metadata operations (mkdir/create/exists/ls/mv/rm)
against either backend, optionally starting a PR 1 trace per operation
so the latency accounting layer (:mod:`repro.latency`) can explain the
slow tail, and reports p50/p99/p999 CDFs per operation type.

Two arrival models, per the classic open-vs-closed distinction:

* **closed loop** (``arrival_ms=None``): a window of ``window``
  outstanding operations; each completion issues the next.  Measures
  best-case service latency — the system is never oversubscribed.
* **open loop** (``arrival_ms=k``): one new operation every ``k`` ms
  regardless of completions.  Queueing delay shows up honestly in the
  tail when arrivals outpace service.

The driver is a plain :class:`~repro.sim.node.Process` embedding an
:class:`~repro.boomfs.client.FSSession`, so the same instance runs
unmodified on the simulator and on the asyncio backend::

    driver = cluster.add(LoadDriver("loadgen", masters=["master"],
                                    total_ops=1000, seed=7))
    cluster.run_until(lambda: driver.done, max_time_ms=600_000)
    print(driver.render_report())
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..analysis.cdf import percentile, render_ascii_cdf
from ..boomfs.client import FSSession
from ..sim.network import Address
from ..sim.node import Process

#: Default operation mix (weights): read-mostly metadata traffic.
DEFAULT_MIX = {
    "mkdir": 2,
    "create": 4,
    "exists": 5,
    "ls": 3,
    "mv": 1,
    "rm": 1,
}


@dataclass
class OpRecord:
    """One completed operation."""

    op: str
    path: str
    start_ms: int
    end_ms: int
    ok: bool
    retried: bool
    trace_id: Optional[str] = None

    @property
    def latency_ms(self) -> int:
        return self.end_ms - self.start_ms


class LoadDriver(Process):
    """Drives a seeded metadata-op mix against BOOM-FS masters."""

    def __init__(
        self,
        address: Address = "loadgen",
        masters: list[Address] | str = "master",
        total_ops: int = 1000,
        window: int = 8,
        arrival_ms: Optional[int] = None,
        mix: Optional[dict[str, int]] = None,
        seed: int = 0,
        trace: bool = True,
        rpc_timeout_ms: int = 400,
    ):
        super().__init__(address)
        if isinstance(masters, str):
            masters = [masters]
        self.session = FSSession(self, masters, rpc_timeout_ms=rpc_timeout_ms)
        self.total_ops = total_ops
        self.window = window
        self.arrival_ms = arrival_ms
        self.trace = trace
        mix = dict(DEFAULT_MIX if mix is None else mix)
        self._ops = sorted(mix)
        self._weights = [mix[op] for op in self._ops]
        self._rng = random.Random(seed)
        self.records: list[OpRecord] = []
        self._issued = 0
        self._completed = 0
        self._name_n = 0
        # Namespace pools the generator draws targets from ("/" is the
        # pre-existing root, always a valid ls/exists target).
        self._dirs: list[str] = ["/"]
        self._files: list[str] = []

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self.arrival_ms is None:
            for _ in range(min(self.window, self.total_ops)):
                self._issue()
        else:
            self._arrival()

    def handle_message(self, relation: str, row: tuple) -> None:
        if self.session.handles(relation):
            self.session.on_message(relation, row)

    @property
    def done(self) -> bool:
        return self._completed >= self.total_ops

    # -- op generation --------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._name_n += 1
        return f"/{prefix}{self._name_n}"

    def _pick(self) -> tuple[str, str, Optional[str]]:
        """Choose (op, path, arg) from the mix, adjusting the namespace
        pools optimistically at issue time (seeded, so the op sequence is
        reproducible for a given seed regardless of backend timing)."""
        (op,) = self._rng.choices(self._ops, weights=self._weights)
        if op == "mkdir":
            path = self._fresh("d")
            self._dirs.append(path)
            return op, path, None
        if op == "create":
            path = self._fresh("f")
            self._files.append(path)
            return op, path, None
        if op == "exists":
            pool = self._files + self._dirs
            return op, self._rng.choice(pool), None
        if op == "ls":
            return op, self._rng.choice(self._dirs), None
        if op == "mv" and self._files:
            index = self._rng.randrange(len(self._files))
            old = self._files[index]
            new = self._fresh("f")
            self._files[index] = new
            return op, old, new
        if op == "rm" and self._files:
            index = self._rng.randrange(len(self._files))
            return op, self._files.pop(index), None
        # mv/rm with an empty file pool degrade to a namespace probe.
        return "exists", "/", None

    def _issue(self) -> None:
        if self._issued >= self.total_ops:
            return
        self._issued += 1
        op, path, arg = self._pick()
        start_ms = self.now
        tracer = self.tracer
        ref = None
        if self.trace and tracer is not None:
            ref = tracer.start_trace(f"{op} {path}", node=str(self.address))

        def done(ok: bool, payload, retried: bool) -> None:
            # The pools are adjusted optimistically at issue time, so a
            # concurrent window can probe a path whose create has not
            # landed yet (or mkdir a name a retried attempt already
            # made).  Those answers are correct service, not errors.
            self.records.append(
                OpRecord(
                    op=op,
                    path=path,
                    start_ms=start_ms,
                    end_ms=self.now,
                    ok=ok or payload in ("noent", "exists"),
                    retried=retried,
                    trace_id=ref.trace_id if ref is not None else None,
                )
            )
            self._completed += 1
            if self.arrival_ms is None:
                self._issue()

        def starter() -> None:
            if op == "mv":
                self.session.mv(path, arg, done)
            else:
                getattr(self.session, op)(path, done)

        # Issue under exactly this op's context: callbacks run inside a
        # *response* delivery whose ambient context belongs to the
        # previous op — inheriting it would chain unrelated traces.
        if tracer is not None:
            with tracer.activate((ref,) if ref is not None else ()):
                starter()
        else:
            starter()

    def _arrival(self) -> None:
        if self._issued >= self.total_ops:
            return
        self._issue()
        if self._issued < self.total_ops:
            self.after(self.arrival_ms, self._arrival)

    # -- reporting ------------------------------------------------------------

    def latencies(self, op: Optional[str] = None) -> list[int]:
        return [
            r.latency_ms for r in self.records if op is None or r.op == op
        ]

    def slowest(self, fraction: float = 0.1) -> list[OpRecord]:
        """The slowest ``fraction`` of completed ops, slowest first."""
        ranked = sorted(
            self.records, key=lambda r: r.latency_ms, reverse=True
        )
        keep = max(1, int(len(ranked) * fraction))
        return ranked[:keep]

    def percentile_report(self) -> dict:
        """Per-op and overall latency percentiles (p50/p99/p999)."""
        report: dict = {}
        ops = sorted({r.op for r in self.records})
        for key in ["all"] + ops:
            values = self.latencies(None if key == "all" else key)
            if not values:
                continue
            report[key] = {
                "count": len(values),
                "errors": sum(
                    1
                    for r in self.records
                    if not r.ok and (key == "all" or r.op == key)
                ),
                "p50": percentile(values, 50),
                "p99": percentile(values, 99),
                "p999": percentile(values, 99.9),
                "max": max(values),
                "mean": sum(values) / len(values),
            }
        return report

    def render_report(self, width: int = 48) -> str:
        """Percentile table plus per-op ASCII CDFs."""
        report = self.percentile_report()
        lines = [
            f"{self.total_ops} ops, "
            f"{'closed' if self.arrival_ms is None else 'open'}-loop "
            f"({'window=' + str(self.window) if self.arrival_ms is None else 'arrival=' + str(self.arrival_ms) + 'ms'})"
        ]
        lines.append(
            f"  {'op':<8} {'count':>6} {'err':>4} {'p50':>7} {'p99':>7} "
            f"{'p999':>7} {'max':>7}"
        )
        for key, row in report.items():
            lines.append(
                f"  {key:<8} {row['count']:>6} {row['errors']:>4} "
                f"{row['p50']:>7.0f} {row['p99']:>7.0f} "
                f"{row['p999']:>7.0f} {row['max']:>7.0f}"
            )
        series = {
            op: self.latencies(op)
            for op in sorted({r.op for r in self.records})
        }
        lines.append(
            render_ascii_cdf(series, width=width, title="latency CDFs (ms):")
        )
        return "\n".join(lines)


def run_driver(cluster, driver: LoadDriver, max_time_ms: int = 600_000) -> LoadDriver:
    """Add ``driver`` to ``cluster`` (if needed) and run it to completion."""
    if driver.address not in cluster.processes:
        cluster.add(driver)
    finished = cluster.run_until(
        lambda: driver.done, max_time_ms=cluster.now + max_time_ms
    )
    if not finished:
        raise RuntimeError(
            f"load driver finished only {driver._completed}/{driver.total_ops}"
            f" ops within {max_time_ms} ms"
        )
    return driver


__all__ = ["DEFAULT_MIX", "LoadDriver", "OpRecord", "run_driver"]
