"""repro: a from-scratch reproduction of BOOM Analytics (EuroSys 2010).

BOOM Analytics rebuilt the Hadoop stack in Overlog, a distributed Datalog
dialect, to show that cloud infrastructure can be dramatically smaller and
more malleable when written data-centrically.  This package contains the
whole study, in Python:

- :mod:`repro.overlog`   -- "PyJOL", an Overlog runtime (the substrate),
- :mod:`repro.sim`       -- a deterministic discrete-event cluster simulator,
- :mod:`repro.boomfs`    -- BOOM-FS, the HDFS-workalike with a declarative
  NameNode (plus hash-partitioned deployment),
- :mod:`repro.paxos`     -- MultiPaxos in Overlog and the replicated NameNode,
- :mod:`repro.mapreduce` -- BOOM-MR with declarative scheduling (FIFO,
  Hadoop speculation, LATE),
- :mod:`repro.hadoop`    -- the imperative baseline stack for comparison,
- :mod:`repro.monitoring`-- metaprogrammed tracing and invariant checking,
- :mod:`repro.analysis`  -- CDFs, code-size accounting, report tables.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record; ``benchmarks/`` regenerates every table/figure.
"""

__version__ = "1.0.0"

from . import analysis, boomfs, hadoop, mapreduce, monitoring, overlog, paxos, sim

__all__ = [
    "analysis",
    "boomfs",
    "hadoop",
    "mapreduce",
    "monitoring",
    "overlog",
    "paxos",
    "sim",
    "__version__",
]
